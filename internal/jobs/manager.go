package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sprint/internal/core"
	"sprint/internal/matrix"
	"sprint/internal/metrics"
)

// Config sizes a Manager.  Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size: how many jobs run concurrently.
	// Defaults to half the CPUs (each job parallelises internally over
	// its own NProcs ranks), minimum 1.
	Workers int
	// QueueDepth bounds the queue of jobs waiting for a worker, both
	// classes together; a full queue sheds submissions with ErrQueueFull
	// (wrapped in an OverloadError carrying Retry-After).  Defaults to 64.
	QueueDepth int
	// DefaultNProcs is the rank count for jobs that do not choose one.
	// Defaults to runtime.GOMAXPROCS(0): every available CPU.
	DefaultNProcs int
	// DefaultEvery is the checkpoint/progress window for jobs that do not
	// choose one, in permutations.  Defaults to 1000.
	DefaultEvery int64
	// DefaultMode, when non-empty, is the engine mode applied to
	// submissions that leave Opt.Mode blank: "exact" (the zero-value
	// default) or "sequential".  An explicit Spec.Opt.Mode always wins.
	DefaultMode string
	// DefaultSeqAlpha and DefaultSeqTolerance seed the sequential
	// stopping parameters of submissions that leave them zero; zero here
	// keeps the engine defaults (0.05 and 0.02).
	DefaultSeqAlpha     float64
	DefaultSeqTolerance float64
	// CacheSize bounds the result cache (entries).  Defaults to 128.
	// Negative disables caching.
	CacheSize int
	// CheckpointDir, when non-empty, mirrors checkpoints to disk so
	// resume survives a daemon restart.  Empty keeps them in memory only.
	CheckpointDir string
	// MaxCheckpoints bounds the checkpoint store; the least recently
	// updated checkpoints (i.e. abandoned analyses) are discarded beyond
	// it, memory and disk file both.  Defaults to 512.
	MaxCheckpoints int
	// MaxJobs bounds the job table; the oldest finished jobs are pruned
	// beyond it.  Defaults to 4096.
	MaxJobs int
	// DatasetCacheSize bounds the in-memory dataset registry (entries).
	// Defaults to 32.  Negative disables the registry: PutDataset and
	// dataset-id submissions are rejected.  Entries referenced by queued
	// or running jobs are never evicted, so the bound can be transiently
	// exceeded while every entry is in use.
	DatasetCacheSize int
	// DatasetDir, when non-empty, mirrors registered datasets to disk as
	// "<digest>.spb" files (typically alongside CheckpointDir), so they
	// survive LRU eviction and daemon restarts.  Empty keeps the registry
	// memory-only.
	DatasetDir string
	// MaxPrepsPerDataset bounds the cached preparations (scrub + rank +
	// moment precompute state) kept per dataset, one per distinct
	// (labels, test, side, nonpara, NA) combination.  Defaults to 8.
	MaxPrepsPerDataset int
	// JournalDir, when non-empty, enables the write-ahead job journal:
	// every admitted job is durably recorded before Submit returns, and
	// a restarted manager replays the journal, re-admits every
	// non-terminal job under its original id, and resumes running jobs
	// from their newest valid checkpoint — results bitwise identical to
	// an uninterrupted run.  Matrix submissions are mirrored into
	// DatasetDir by content address so their cells survive too (without
	// a DatasetDir they are replayed as failed: unrecoverable).  Empty
	// disables journaling.
	JournalDir string
	// JournalCompactEvery bounds the journal file: past this many
	// frames it is compacted to one submit record per live job.
	// Defaults to 4096.
	JournalCompactEvery int

	// Metrics is the registry the manager instruments (queue depth and
	// wait, per-stage timings, shed/throttle decisions, dataset-plane
	// counters).  Nil gets a private registry, so instrumentation is
	// always on; callers that serve /metrics pass their own.
	Metrics *metrics.Registry
	// QueuePolicy selects how workers pop queued jobs: "fair" (default —
	// the two-class weighted-fair queue, interactive over bulk) or
	// "fifo" (strict global arrival order, the pre-admission behaviour).
	QueuePolicy string
	// InteractiveMaxB classifies submissions: sampled jobs with B at or
	// under this bound count as interactive, everything else (including
	// complete enumerations) as bulk.  An explicit Spec.Class overrides.
	// Defaults to 10000.
	InteractiveMaxB int64
	// InteractiveWeight is how many interactive pops one bulk pop is
	// worth while both classes are backlogged.  Defaults to 4.
	InteractiveWeight int
	// TenantLimits configures per-tenant token buckets.  The zero value
	// admits everything (no rate limiting).
	TenantLimits TenantLimits
	// MaxQueueWait, when positive, sheds submissions whose predicted
	// queue wait (backlog over observed drain rate) exceeds it — the
	// proactive half of load shedding.  0 sheds only on a full queue.
	MaxQueueWait time.Duration

	// Distributor, when non-nil, makes this manager a cluster
	// coordinator: popped jobs are handed to it (with the shared
	// preparation and the dataset's content address) instead of the
	// local kernel.  A distributor that declines a job with
	// ErrNotDistributed — no live workers, B under its threshold —
	// falls the job back to the bit-identical local path.
	Distributor Distributor

	// Clock overrides time.Now in tests; nil uses time.Now.
	Clock func() time.Time
	// OnCheckpoint, when non-nil, is called after every saved checkpoint
	// with the job ID and its progress — an observation hook for
	// operators and tests.
	OnCheckpoint func(id string, done, total int64)
}

// applyModeDefaults fills the server-configured engine mode and stopping
// parameters into a submission that left them blank.  An explicit
// Opt.Mode always wins, and the sequential knobs are only seeded on jobs
// that actually resolve to sequential mode — exact submissions stay
// untouched so their content keys cannot drift.
func (c Config) applyModeDefaults(opt core.Options) core.Options {
	if opt.Mode == "" && c.DefaultMode != "" {
		opt.Mode = c.DefaultMode
	}
	if opt.Mode == core.ModeSequential {
		if opt.SeqAlpha == 0 {
			opt.SeqAlpha = c.DefaultSeqAlpha
		}
		if opt.SeqTolerance == 0 {
			opt.SeqTolerance = c.DefaultSeqTolerance
		}
	}
	return opt
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU() / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.DefaultNProcs < 1 {
		c.DefaultNProcs = runtime.GOMAXPROCS(0)
	}
	if c.DefaultEvery < 1 {
		c.DefaultEvery = 1000
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 4096
	}
	if c.MaxCheckpoints == 0 {
		c.MaxCheckpoints = 512
	}
	if c.DatasetCacheSize == 0 {
		c.DatasetCacheSize = 32
	}
	if c.MaxPrepsPerDataset == 0 {
		c.MaxPrepsPerDataset = 8
	}
	if c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	if c.QueuePolicy == "" {
		c.QueuePolicy = "fair"
	}
	if c.InteractiveMaxB < 1 {
		c.InteractiveMaxB = 10000
	}
	if c.InteractiveWeight < 1 {
		c.InteractiveWeight = 4
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// job is the manager's mutable record of one submission.  All fields are
// guarded by Manager.mu except class/tenant/enqueueSeq/enqueuedAt, which
// are immutable after Submit.
type job struct {
	id   string
	key  string
	spec Spec
	// data is the resolved flat matrix the analysis runs on; the spec's
	// X/XFlat payloads are released at submission once data exists.
	// Dataset-id jobs carry no data at all: ds pins the registry entry
	// (one reference, held from submission to the terminal state) and the
	// worker runs over its shared preparation instead.
	data matrix.Matrix
	ds   *dsEntry

	tenant     string
	class      JobClass
	enqueueSeq int64
	enqueuedAt time.Time

	state       State
	err         error
	done, total int64
	resumedFrom int64
	cacheHit    bool
	profile     core.Profile
	result      *core.Result

	// Sequential-mode live progress (updated from the run's OnSeq hook):
	// rows still accumulating and per-row evaluations already saved.
	seqActiveRows int
	seqPermsSaved int64

	submittedAt, startedAt, finishedAt time.Time

	cancel          context.CancelFunc
	cancelRequested bool
}

func (j *job) status() Status {
	s := Status{
		ID:            j.id,
		Key:           j.key,
		State:         j.state,
		Done:          j.done,
		Total:         j.total,
		ResumedFrom:   j.resumedFrom,
		CacheHit:      j.cacheHit,
		NProcs:        j.spec.NProcs,
		Tenant:        j.tenant,
		Class:         j.class.String(),
		Mode:          j.spec.Opt.Mode,
		SeqActiveRows: j.seqActiveRows,
		SeqPermsSaved: j.seqPermsSaved,
		Profile:       j.profile,
		SubmittedAt:   j.submittedAt,
		StartedAt:     j.startedAt,
		FinishedAt:    j.finishedAt,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// ClassLatency is a per-class latency digest inside Stats.
type ClassLatency struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// Stats is the manager-wide counter snapshot served by /v1/stats.  The
// pre-admission fields keep their names and meanings; the admission and
// observability plane appends, never renames.
type Stats struct {
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Cancelled     int64 `json:"cancelled"`
	CacheHits     int64 `json:"cache_hits"`
	Resumed       int64 `json:"resumed"`
	Queued        int   `json:"queued"`
	Running       int   `json:"running"`
	QueueCap      int   `json:"queue_cap"`
	Workers       int   `json:"workers"`
	Jobs          int   `json:"jobs"`
	CachedResults int   `json:"cached_results"`
	Checkpoints   int   `json:"checkpoints"`
	// DatasetsAdded counts registrations that created a new entry (dedup
	// re-uploads don't count); Datasets and DatasetBytes snapshot the
	// in-memory registry.  PrepBuilds counts full preparations (scrub +
	// rank + moment precompute) actually built for dataset jobs;
	// PrepHits counts dataset jobs that reused one without building.
	DatasetsAdded int64 `json:"datasets_added"`
	Datasets      int   `json:"datasets"`
	DatasetBytes  int64 `json:"dataset_bytes"`
	PrepBuilds    int64 `json:"prep_builds"`
	PrepHits      int64 `json:"prep_hits"`
	// Kernel is the active two-sample accumulation kernel ISA
	// ("avx2", "sse2" or "generic" — process-wide runtime dispatch).
	Kernel string `json:"kernel"`
	// PermOrder describes the enumeration order jobs run under when they
	// leave Options.PermOrder at its default.
	PermOrder string `json:"perm_order"`

	// ---- Admission / observability plane (PR 6) ----

	// QueuePolicy names the active pop discipline ("fair" or "fifo");
	// QueuedInteractive/QueuedBulk split Queued by class.
	QueuePolicy       string `json:"queue_policy"`
	QueuedInteractive int    `json:"queued_interactive"`
	QueuedBulk        int    `json:"queued_bulk"`
	// Shed* count admission refusals by reason; every one of them also
	// carried a Retry-After to the client.
	ShedQueueFull   int64 `json:"shed_queue_full"`
	ShedQueueWait   int64 `json:"shed_queue_wait"`
	ShedRateLimited int64 `json:"shed_rate_limited"`
	// QueueWait* digest the queue-age histograms per class.
	QueueWaitInteractive ClassLatency `json:"queue_wait_interactive"`
	QueueWaitBulk        ClassLatency `json:"queue_wait_bulk"`
	// DrainRatePerSec is the observed completion rate over the last 30s
	// — the denominator of every Retry-After.
	DrainRatePerSec float64 `json:"drain_rate_per_sec"`
	// Hit rates derived from the counters above, in [0,1]; 0 when the
	// denominator is 0.
	CacheHitRate float64 `json:"cache_hit_rate"`
	PrepHitRate  float64 `json:"prep_hit_rate"`
	// Dataset-plane reference traffic: registry answers from memory,
	// reloads from the disk mirror, LRU evictions.
	DatasetHits      int64 `json:"dataset_hits"`
	DatasetReloads   int64 `json:"dataset_reloads"`
	DatasetEvictions int64 `json:"dataset_evictions"`
	// TenantsActive counts tenants with resident admission state;
	// Tenants lists the busiest (top 32) with admitted/throttled counts.
	TenantsActive int          `json:"tenants_active"`
	Tenants       []TenantStat `json:"tenants,omitempty"`

	// ---- Durability / integrity plane (PR 8) ----

	// Recovering reports that journal replay re-admission is still in
	// progress (the readiness probe's signal).
	Recovering bool `json:"recovering"`
	// JournalPending counts journaled jobs not yet terminal;
	// JournalReplayed counts jobs re-admitted by this process's replay;
	// JournalCorruptFrames counts torn/corrupt frames dropped at replay;
	// JournalAppendErrors counts appends that failed (durability
	// degraded, service continued).
	JournalPending       int   `json:"journal_pending"`
	JournalReplayed      int64 `json:"journal_replayed"`
	JournalCorruptFrames int64 `json:"journal_corrupt_frames"`
	JournalAppendErrors  int64 `json:"journal_append_errors"`
	// CorruptCheckpoints and CorruptDatasets count integrity-frame or
	// digest failures detected on disk reads; each one was quarantined
	// and the affected work recomputed from an older prefix or scratch.
	CorruptCheckpoints int64 `json:"corrupt_checkpoints"`
	CorruptDatasets    int64 `json:"corrupt_datasets"`

	// ---- Sequential engine plane (additive) ----

	// SeqRowsStopped counts rows frozen before their planned permutation
	// count; SeqPermsSaved the per-row evaluations those freezes avoided;
	// SeqJobsEarlyStopped whole jobs that terminated before their planned
	// count.
	SeqRowsStopped      int64 `json:"seq_rows_stopped"`
	SeqPermsSaved       int64 `json:"seq_perms_saved"`
	SeqJobsEarlyStopped int64 `json:"seq_jobs_early_stopped"`
}

// Manager owns the queue, the worker pool, the result cache and the
// checkpoint store.  All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	seq      int64
	jobs     map[string]*job
	order    []string // submission order, for pruning
	cache    *resultCache
	ckpts    *ckptStore
	datasets *dsStore
	stats    Stats

	queue   *fairQueue
	tenants *tenantLimiter
	drain   *drainMeter
	met     *mgrMetrics

	// journal is the write-ahead job log (nil when disabled);
	// recovering is set while replayed jobs are being re-admitted.
	journal         *jobJournal
	recovering      atomic.Bool
	journalAppendEr atomic.Int64
	// ledgers holds replayed distributed merge ledgers by job id until
	// the job's first dispatch claims its state (guarded by mu).
	ledgers map[string]*LedgerState
	// onWindow feeds kernel-window wall times into the histogram; built
	// once here so the per-job RunControl assignment allocates nothing.
	onWindow func(perms int64, elapsed time.Duration)

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
}

// NewManager starts a manager with cfg.Workers workers.  Call Close to
// drain and stop it.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.QueuePolicy != "fair" && cfg.QueuePolicy != "fifo" {
		return nil, fmt.Errorf("jobs: unknown queue policy %q (want fair or fifo)", cfg.QueuePolicy)
	}
	ckpts, err := newCkptStore(cfg.CheckpointDir, cfg.MaxCheckpoints)
	if err != nil {
		return nil, err
	}
	datasets, err := newDSStore(cfg.DatasetDir, cfg.DatasetCacheSize, cfg.MaxPrepsPerDataset)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		cache:     newResultCache(cfg.CacheSize),
		ckpts:     ckpts,
		datasets:  datasets,
		queue:     newFairQueue(cfg.QueueDepth, cfg.InteractiveWeight, cfg.QueuePolicy == "fifo"),
		tenants:   newTenantLimiter(cfg.TenantLimits),
		drain:     &drainMeter{},
		met:       newMgrMetrics(cfg.Metrics),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	m.onWindow = func(perms int64, elapsed time.Duration) {
		m.met.kernelWin.ObserveDuration(elapsed)
	}
	// Evictions happen under m.mu at several call sites; the callback
	// keeps the counter beside the rest of the stats.
	m.datasets.noteEvict = func(n int) {
		m.stats.DatasetEvictions += int64(n)
		m.met.dsEvicted.Add(int64(n))
	}
	// Integrity observers: quarantined checkpoint generations and
	// corrupt dataset mirrors surface as counters, never as job errors
	// — the read paths fall back (older prefix, B=0, re-push).
	m.ckpts.noteCorrupt = func(key string) {
		m.stats.CorruptCheckpoints++
		m.met.ckptCorrupt.Inc()
	}
	m.datasets.noteCorrupt = func(id string) {
		m.mu.Lock()
		m.stats.CorruptDatasets++
		m.mu.Unlock()
		m.met.dsCorrupt.Inc()
	}

	// Journal replay happens BEFORE workers start: the replayed state
	// (sequence number, pending set) must be complete before any new
	// submission can mint an id or any worker can pop a job.
	var replay *journalReplay
	if cfg.JournalDir != "" {
		var err error
		m.journal, replay, err = openJournal(cfg.JournalDir, cfg.JournalCompactEvery)
		if err != nil {
			return nil, err
		}
		m.seq = replay.MaxSeq
		m.stats.JournalCorruptFrames = int64(replay.CorruptFrames)
		if replay.CorruptFrames > 0 {
			m.met.journalCorrupt.Add(int64(replay.CorruptFrames))
		}
		m.ledgers = replay.Ledgers
	}

	m.registerGauges(cfg.Metrics)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if replay != nil && len(replay.Pending) > 0 {
		// Re-admission runs in the background (dataset reloads can be
		// big); Recovering() stays true — and the readiness probe not
		// ready — until every journaled job is queued or failed.
		m.recovering.Store(true)
		m.wg.Add(1)
		go m.recover(replay)
	} else if m.journal != nil {
		// Nothing to replay: compact away the previous life's history.
		m.journal.compact()
	}
	return m, nil
}

// Recovering reports whether journal replay re-admission is still in
// progress.  The HTTP readiness probe reports not-ready while true.
func (m *Manager) Recovering() bool { return m.recovering.Load() }

// recover re-admits every non-terminal journaled job, in original
// submission order and under its original id.  Jobs whose dataset is
// gone (no mirror — e.g. a matrix submission journaled without a
// DatasetDir) are recorded as Failed: unrecoverable, but visible.
func (m *Manager) recover(replay *journalReplay) {
	defer m.wg.Done()
	defer m.recovering.Store(false)
	for _, rec := range replay.Pending {
		if !m.recoverJob(rec) {
			return // manager closed mid-recovery
		}
	}
	// Replay plus re-admission re-journaled nothing; rewrite the log to
	// the live set so the next restart replays one submit per job.
	m.journal.compact()
}

// recoverJob rebuilds one journaled job and re-admits it.  It returns
// false only when the manager is closing (stop recovery); corrupt or
// unrecoverable records are consumed and surfaced, not fatal.
func (m *Manager) recoverJob(rec *journalRecord) bool {
	spec := Spec{
		DatasetID: rec.Dataset,
		Labels:    rec.Labels,
		NProcs:    rec.NProcs,
		Every:     rec.Every,
		Tenant:    rec.Tenant,
		Class:     rec.Class,
	}
	if rec.Opt != nil {
		spec.Opt = *rec.Opt
	}
	fail := func(err error) bool {
		now := m.cfg.Clock()
		j := &job{
			id: rec.ID, key: rec.Key, tenant: rec.Tenant,
			state: Failed, err: fmt.Errorf("jobs: unrecoverable after restart: %w", err),
			submittedAt: now, finishedAt: now,
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return false
		}
		m.insertLocked(j)
		m.stats.Failed++
		m.mu.Unlock()
		m.met.failed.Inc()
		m.journalAppend(&journalRecord{T: "fail", ID: rec.ID, Key: rec.Key})
		return true
	}

	canon, err := core.CanonicalOptions(spec.Opt)
	if err != nil {
		return fail(err)
	}
	spec.Opt = canon
	class, err := classFor(spec.Class, canon.B, m.cfg.InteractiveMaxB)
	if err != nil {
		return fail(err)
	}
	if spec.NProcs < 1 {
		spec.NProcs = m.cfg.DefaultNProcs
	}
	if spec.Every < 1 {
		spec.Every = m.cfg.DefaultEvery
	}
	// The journaled key must equal the key this process would compute:
	// anything else is a corrupt or cross-version record, and running
	// the wrong analysis under a recycled id would be worse than
	// dropping it.
	key, err := jobKey(rec.Dataset, rec.Labels, canon)
	if err != nil || key != rec.Key {
		m.met.journalCorrupt.Inc()
		m.mu.Lock()
		m.stats.JournalCorruptFrames++
		m.mu.Unlock()
		return true
	}
	ds, err := m.datasetRef(rec.Dataset)
	if err != nil {
		return fail(err)
	}

	m.mu.Lock()
	if m.closed {
		m.releaseDatasetLocked(ds)
		m.mu.Unlock()
		return false
	}
	now := m.cfg.Clock()
	j := &job{
		id:          rec.ID,
		key:         key,
		spec:        spec,
		ds:          ds,
		tenant:      rec.Tenant,
		class:       class,
		enqueueSeq:  jobSeq(rec.ID),
		enqueuedAt:  now,
		state:       Queued,
		total:       canon.B,
		submittedAt: now,
	}
	m.insertLocked(j)
	m.stats.JournalReplayed++
	m.mu.Unlock()
	m.met.journalReplayed.Inc()

	// The queue may be momentarily full of other replayed jobs; unlike
	// Submit, recovery must not shed — these jobs were already admitted
	// in a previous life.  Retry until space frees or the manager closes.
	for {
		m.mu.Lock()
		if m.closed {
			m.releaseJobLocked(j)
			m.mu.Unlock()
			return false
		}
		pushed := m.queue.tryPush(j)
		m.mu.Unlock()
		if pushed {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// journalAppend writes one record to the journal (no-op when
// journaling is disabled).  Append failures degrade durability, not
// service: they are counted and the job proceeds.
func (m *Manager) journalAppend(rec *journalRecord) {
	if m.journal == nil {
		return
	}
	start := time.Now()
	if err := m.journal.append(rec); err != nil {
		m.journalAppendEr.Add(1)
		m.met.journalAppendErr.Inc()
		return
	}
	m.met.journalAppendD.ObserveDuration(time.Since(start))
	m.met.journalRecords.Inc()
}

// Metrics returns the registry the manager instruments.
func (m *Manager) Metrics() *metrics.Registry { return m.cfg.Metrics }

// shed records one admission refusal and builds the typed rejection the
// HTTP layer turns into 429 + Retry-After.
func (m *Manager) shed(reason string, sentinel error, retryAfter time.Duration, now time.Time) error {
	if retryAfter <= 0 {
		retryAfter = m.drain.retryAfter(m.queue.len(), now)
	}
	m.met.shed[reason].Inc()
	m.mu.Lock()
	switch reason {
	case "queue_full":
		m.stats.ShedQueueFull++
	case "queue_wait":
		m.stats.ShedQueueWait++
	case "rate_limited":
		m.stats.ShedRateLimited++
	}
	m.mu.Unlock()
	return &OverloadError{Reason: reason, RetryAfter: retryAfter, sentinel: sentinel}
}

// Submit validates the spec, answers it from the result cache when the
// content key is already computed, and otherwise runs it through the
// admission plane (tenant token bucket, queue bound, predicted-wait
// bound) and enqueues it in its fairness class.  It returns the initial
// status: Done with CacheHit set for a hit, Queued otherwise.  A refusal
// returns an *OverloadError wrapping ErrQueueFull or ErrRateLimited and
// carrying the Retry-After guidance; cache hits are exempt from
// admission control — they occupy no worker.
func (m *Manager) Submit(spec Spec) (Status, error) {
	spec.Opt = m.cfg.applyModeDefaults(spec.Opt)
	canon, err := core.CanonicalOptions(spec.Opt)
	if err != nil {
		return Status{}, err
	}
	spec.Opt = canon
	class, err := classFor(spec.Class, canon.B, m.cfg.InteractiveMaxB)
	if err != nil {
		return Status{}, err
	}
	if spec.NProcs < 1 {
		spec.NProcs = m.cfg.DefaultNProcs
	}
	if spec.Every < 1 {
		spec.Every = m.cfg.DefaultEvery
	}
	// The content key is computed in place, whichever payload form was
	// submitted: cache hits and shed submissions never pay the matrix
	// copy that resolve makes.
	key, err := spec.contentKey()
	if err != nil {
		return Status{}, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	if res, ok := m.cache.get(key); ok {
		now := m.cfg.Clock()
		m.seq++
		j := &job{
			id:          fmt.Sprintf("j%06d", m.seq),
			key:         key,
			spec:        Spec{Opt: spec.Opt, NProcs: spec.NProcs, Every: spec.Every},
			tenant:      spec.Tenant,
			class:       class,
			state:       Done,
			cacheHit:    true,
			result:      res,
			done:        res.B,
			total:       res.B,
			submittedAt: now,
			startedAt:   now,
			finishedAt:  now,
		}
		m.stats.Submitted++
		m.stats.CacheHits++
		m.insertLocked(j)
		m.mu.Unlock()
		m.met.submitted[class].Inc()
		m.met.cacheHits.Inc()
		return j.status(), nil
	}
	m.mu.Unlock()

	now := m.cfg.Clock()
	// Tenant token bucket: the submission costs one token whatever
	// happens next, so a client cannot probe the queue for free.
	if ok, refill := m.tenants.take(spec.Tenant, now); !ok {
		m.met.throttled.Inc()
		return Status{}, m.shed("rate_limited", ErrRateLimited, refill, now)
	}
	// Fast-fail before paying the resolve copy; the enqueue below
	// re-checks authoritatively.
	if m.queue.full() {
		return Status{}, m.shed("queue_full", ErrQueueFull, 0, now)
	}
	// Predicted-wait bound: when the backlog would take longer to drain
	// than the configured limit, shedding now with honest guidance beats
	// admitting a job that will time out in the queue.
	if m.cfg.MaxQueueWait > 0 {
		if rate := m.drain.ratePerSec(now); rate > 0 {
			est := time.Duration(float64(m.queue.len()+1) / rate * float64(time.Second))
			if est > m.cfg.MaxQueueWait {
				return Status{}, m.shed("queue_wait", ErrQueueFull, est, now)
			}
		}
	}

	// Cache miss: attach the payload outside the lock.  Dataset
	// submissions pin their registry entry (one reference held until the
	// job is terminal) and carry no matrix at all; matrix submissions
	// make the engine's private copy (the one copy) — a transpose of the
	// paper's exon-array matrix takes tens of milliseconds and must not
	// stall API handlers.
	var data matrix.Matrix
	var ds *dsEntry
	datasetDigest := spec.DatasetID
	if spec.DatasetID != "" {
		ds, err = m.datasetRef(spec.DatasetID)
		if err != nil {
			return Status{}, err
		}
	} else {
		ingestStart := time.Now()
		data, err = spec.resolve()
		if err != nil {
			return Status{}, err
		}
		m.met.stageIngest.ObserveDuration(time.Since(ingestStart))
		spec.X, spec.XFlat = nil, nil // data supersedes the submission payload
		if m.journal != nil {
			// The journal records datasets by content address only, so a
			// matrix submission becomes durable by mirroring its cells
			// into the dataset plane first.  The digest equals the one
			// inside the content key, so the replayed dataset-id job
			// shares this job's cache and checkpoint identity exactly.
			// A failed mirror degrades durability (the job would replay
			// as unrecoverable), never service.
			datasetDigest = DatasetDigest(data)
			if err := m.datasets.writeDisk(datasetDigest, data); err != nil {
				m.journalAppendEr.Add(1)
				m.met.journalAppendErr.Inc()
			}
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.releaseDatasetLocked(ds)
		return Status{}, ErrClosed
	}
	now = m.cfg.Clock()
	m.seq++
	j := &job{
		id:          fmt.Sprintf("j%06d", m.seq),
		key:         key,
		spec:        spec,
		data:        data,
		ds:          ds,
		tenant:      spec.Tenant,
		class:       class,
		enqueueSeq:  m.seq,
		enqueuedAt:  now,
		state:       Queued,
		total:       canon.B, // 0 for complete enumerations until planned
		submittedAt: now,
	}
	if !m.queue.tryPush(j) {
		m.releaseDatasetLocked(ds)
		m.mu.Unlock()
		err := m.shed("queue_full", ErrQueueFull, 0, now)
		m.mu.Lock() // restore for the deferred unlock
		return Status{}, err
	}
	m.stats.Submitted++
	m.met.submitted[class].Inc()
	m.insertLocked(j)
	// The write-ahead record lands (fsync'd) before Submit returns:
	// once the client holds the job id, a crash cannot forget the job.
	// Appending under m.mu is what orders this record before any
	// lifecycle record a fast worker could write.
	m.journalAppend(submitRecord(j, datasetDigest))
	return j.status(), nil
}

// releaseJobLocked frees a terminal job's inputs: the (potentially very
// large) matrix, the labels, and — for dataset jobs — the registry
// reference that protected the dataset from eviction while the job was
// alive.  Callers hold m.mu.
func (m *Manager) releaseJobLocked(j *job) {
	j.data, j.spec.Labels = matrix.Matrix{}, nil
	if j.ds != nil {
		m.releaseDatasetLocked(j.ds)
		j.ds = nil
	}
}

// insertLocked records j and prunes the oldest finished jobs beyond
// MaxJobs.  Callers hold m.mu.
func (m *Manager) insertLocked(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if len(m.jobs) <= m.cfg.MaxJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.jobs) - m.cfg.MaxJobs
	for _, id := range m.order {
		if excess > 0 {
			if old, ok := m.jobs[id]; ok && old.state.Terminal() {
				delete(m.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns the status of a job.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Result returns the finished result of a job, or ErrNotDone while it is
// still queued, running, cancelled or failed.
func (m *Manager) Result(id string) (*core.Result, Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Status{}, ErrUnknownJob
	}
	if j.state != Done || j.result == nil {
		return nil, j.status(), ErrNotDone
	}
	return j.result, j.status(), nil
}

// Cancel stops a job.  A queued job is marked cancelled and skipped when a
// worker pops it; a running job's context is cancelled, and the job
// transitions once the run stops at its next window boundary (its last
// checkpoint is retained for resumption).  Cancelling a terminal job is a
// no-op.  The returned status reflects the state at return, which for a
// running job is usually still Running.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrUnknownJob
	}
	switch j.state {
	case Queued:
		j.state = Cancelled
		j.finishedAt = m.cfg.Clock()
		m.releaseJobLocked(j)
		m.stats.Cancelled++
		m.met.cancelled.Inc()
		m.journalAppend(&journalRecord{T: "cancel", ID: j.id, Key: j.key})
	case Running:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.status(), nil
}

// StatsSnapshot returns the current counters, the admission-plane state
// and the queue-age digests.
func (m *Manager) StatsSnapshot() Stats {
	qi, qb := m.queue.lens()
	now := m.cfg.Clock()
	drainRate := m.drain.ratePerSec(now)
	tenantsActive := m.tenants.active()
	tenants := m.tenants.snapshot(32)

	m.mu.Lock()
	s := m.stats
	s.QueueCap = m.cfg.QueueDepth
	s.Workers = m.cfg.Workers
	s.Kernel = core.KernelName()
	s.PermOrder = core.PermOrderPolicy
	s.Jobs = len(m.jobs)
	s.CachedResults = m.cache.len()
	s.Checkpoints = m.ckpts.len()
	s.Datasets = len(m.datasets.entries)
	for _, e := range m.datasets.entries {
		s.DatasetBytes += int64(len(e.m.Data)) * 8
	}
	for _, j := range m.jobs {
		switch j.state {
		case Queued:
			s.Queued++
		case Running:
			s.Running++
		}
	}
	m.mu.Unlock()

	s.QueuePolicy = m.cfg.QueuePolicy
	s.QueuedInteractive, s.QueuedBulk = qi, qb
	s.DrainRatePerSec = drainRate
	s.Recovering = m.recovering.Load()
	s.JournalAppendErrors = m.journalAppendEr.Load()
	if m.journal != nil {
		s.JournalPending = m.journal.pendingCount()
	}
	s.TenantsActive = tenantsActive
	s.Tenants = tenants
	if s.Submitted > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(s.Submitted)
	}
	if prepTotal := s.PrepBuilds + s.PrepHits; prepTotal > 0 {
		s.PrepHitRate = float64(s.PrepHits) / float64(prepTotal)
	}
	digest := func(h *metrics.Histogram) ClassLatency {
		return ClassLatency{
			Count: h.Count(),
			P50Ms: h.Quantile(0.50) * 1000,
			P99Ms: h.Quantile(0.99) * 1000,
		}
	}
	s.QueueWaitInteractive = digest(m.met.queueWait[ClassInteractive])
	s.QueueWaitBulk = digest(m.met.queueWait[ClassBulk])
	return s
}

// Close stops the manager: no new submissions are accepted, running jobs
// are cancelled at their next window boundary (checkpoints retained), and
// Close returns once every worker has exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancelAll()
	m.queue.close()
	m.wg.Wait()
	if m.journal != nil {
		m.journal.close()
	}
}

// execute runs one job's analysis: over the shared preparation for
// dataset jobs, over the job's private matrix otherwise.  Both paths are
// bit-identical for the same inputs.
func (m *Manager) execute(j *job, prepared *core.Prepared, ctl core.RunControl) (*core.Result, error) {
	if prepared != nil {
		return core.RunPrepared(prepared, j.spec.Opt, ctl)
	}
	return core.RunMatrix(j.data, j.spec.Labels, j.spec.Opt, ctl)
}

// worker pops jobs from the fair queue and runs them to a terminal
// state.  Each worker owns one RunScratch for its whole lifetime: kernel
// scratch, permutation batch buffers and partial-count vectors are
// reused across jobs instead of reallocated, so the steady-state worker
// path stays allocation-light (asserted by BenchmarkWorkerJobReuse).
func (m *Manager) worker() {
	defer m.wg.Done()
	scratch := &core.RunScratch{}
	for {
		j, ok := m.queue.pop()
		if !ok {
			return
		}
		m.run(j, scratch)
	}
}

// run executes one job through core.Run with the manager's hooks.
func (m *Manager) run(j *job, scratch *core.RunScratch) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	popped := m.cfg.Clock()
	m.met.queueWait[j.class].ObserveDuration(popped.Sub(j.enqueuedAt))

	m.mu.Lock()
	if j.state != Queued { // cancelled while waiting
		m.mu.Unlock()
		return
	}
	if m.baseCtx.Err() != nil { // shutting down: drain without running
		j.state = Cancelled
		j.finishedAt = m.cfg.Clock()
		m.releaseJobLocked(j)
		m.stats.Cancelled++
		m.mu.Unlock()
		m.met.cancelled.Inc()
		return
	}
	j.state = Running
	j.startedAt = popped
	j.cancel = cancel
	resume := m.ckpts.load(j.key)
	if resume != nil {
		j.resumedFrom = resume.Next
		j.done = resume.Done
		m.stats.Resumed++
	}
	m.journalAppend(&journalRecord{T: "start", ID: j.id, Key: j.key})
	m.mu.Unlock()
	if resume != nil {
		m.met.resumed.Inc()
	}

	ctl := core.RunControl{
		Ctx:      ctx,
		NProcs:   j.spec.NProcs,
		Resume:   resume,
		Every:    j.spec.Every,
		Scratch:  scratch,
		OnWindow: m.onWindow,
		Save: func(ck *core.Checkpoint) error {
			m.mu.Lock()
			evicted := m.ckpts.put(j.key, ck)
			m.mu.Unlock()
			// Disk I/O stays outside the lock: a checkpoint encode can
			// be megabytes and must not stall API handlers.
			for _, k := range evicted {
				m.ckpts.removeDisk(k)
			}
			writeStart := time.Now()
			if err := m.ckpts.writeDisk(j.key, ck); err != nil {
				return err
			}
			m.met.ckptWrite.ObserveDuration(time.Since(writeStart))
			// The ckpt record is a progress hint (resume reads the
			// checkpoint store by content key); it is journaled only
			// AFTER the checkpoint itself is durably on disk.
			m.journalAppend(&journalRecord{T: "ckpt", ID: j.id, Key: j.key, Next: ck.Next})
			if m.cfg.OnCheckpoint != nil {
				m.cfg.OnCheckpoint(j.id, ck.Done, ck.TotalB)
			}
			return nil
		},
		OnProgress: func(done, total int64) {
			m.mu.Lock()
			j.done, j.total = done, total
			m.mu.Unlock()
		},
		OnSeq: func(activeRows int, permsSaved int64) {
			m.mu.Lock()
			j.seqActiveRows, j.seqPermsSaved = activeRows, permsSaved
			m.mu.Unlock()
		},
	}
	// Dataset jobs run over the registry's shared preparation — built
	// once per (dataset, labels, prep options) key, reused read-only by
	// every later job on that key — so a cache-hit job goes from queue
	// pop to its first permutation without scrubbing, ranking or
	// precomputing anything.
	var prepared *core.Prepared
	var res *core.Result
	var err error
	distributed := false
	if j.spec.DatasetID != "" {
		prepared, err = m.preparedFor(j)
	}
	// A coordinator hands the job to its distributor first; a declined
	// job (ErrNotDistributed) falls through to the local path below,
	// which computes the identical bits on this node alone.
	if err == nil && m.cfg.Distributor != nil {
		res, err = m.runDistributed(ctx, j, prepared, resume)
		if errors.Is(err, ErrNotDistributed) {
			res, err = nil, nil
		} else {
			distributed = true
		}
	}
	if err == nil && !distributed {
		res, err = m.execute(j, prepared, ctl)
		if resume != nil && errors.Is(err, core.ErrCheckpointMismatch) {
			// A stale checkpoint — e.g. one written by an older engine
			// version whose fingerprints no longer validate — must not
			// poison its content key forever: discard it and run fresh
			// instead of failing every future submission of this dataset.
			m.mu.Lock()
			m.ckpts.drop(j.key)
			j.resumedFrom, j.done = 0, 0
			m.mu.Unlock()
			ctl.Resume = nil
			res, err = m.execute(j, prepared, ctl)
		}
	}

	finished := m.cfg.Clock()
	m.drain.observe(finished)
	m.met.jobDuration[j.class].ObserveDuration(finished.Sub(popped))

	m.mu.Lock()
	defer m.mu.Unlock()
	j.finishedAt = finished
	// The inputs are no longer needed once the job is terminal; release
	// the (potentially very large) matrix — and the dataset reference —
	// so finished jobs don't pin them.
	m.releaseJobLocked(j)
	switch {
	case err == nil:
		j.state = Done
		j.result = res
		j.profile = res.Profile
		j.done, j.total = res.B, res.B
		if res.Sequential() {
			// Keep the planned total visible so an early stop reads as
			// done < total, not as a silently shrunken job.
			j.total = res.PlannedB
			j.seqActiveRows = 0
			j.seqPermsSaved = res.SeqPermsSaved()
			m.met.seqRowsStopped.Add(int64(res.SeqRowsStopped()))
			m.met.seqPermsSaved.Add(res.SeqPermsSaved())
			m.stats.SeqRowsStopped += int64(res.SeqRowsStopped())
			m.stats.SeqPermsSaved += res.SeqPermsSaved()
			if res.B < res.PlannedB {
				m.met.seqJobEarlyStop.Inc()
				m.stats.SeqJobsEarlyStopped++
			}
		}
		m.cache.put(j.key, res)
		m.ckpts.drop(j.key)
		m.stats.Completed++
		m.met.completed[j.class].Inc()
		m.journalAppend(&journalRecord{T: "done", ID: j.id, Key: j.key})
	case j.cancelRequested || errors.Is(err, context.Canceled):
		// Cancelled (or shut down): the checkpoint store keeps the last
		// window so an identical resubmission resumes from it.
		j.state = Cancelled
		j.err = err
		m.stats.Cancelled++
		m.met.cancelled.Inc()
		if j.cancelRequested {
			// Only USER cancellations are journaled terminal.  A
			// shutdown-driven cancellation leaves the job pending in the
			// journal on purpose: those are exactly the jobs a restart
			// must revive and resume.
			m.journalAppend(&journalRecord{T: "cancel", ID: j.id, Key: j.key})
		}
	default:
		j.state = Failed
		j.err = err
		m.stats.Failed++
		m.met.failed.Inc()
		m.journalAppend(&journalRecord{T: "fail", ID: j.id, Key: j.key})
	}
}
