package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"sprint/internal/core"
	"sprint/internal/durable"
	"sprint/internal/faultinject"
)

// This file is the manager's write-ahead job journal: an append-only,
// fsync'd log of job lifecycle records, so that a crashed or kill -9'd
// daemon restarts knowing exactly which jobs were in flight.  On
// restart the journal is replayed, every non-terminal job is re-built
// from its submit record (dataset by content address from the disk
// mirror) and re-admitted with its ORIGINAL id; running jobs then
// resume from their newest valid checkpoint, so the recovered result is
// bitwise identical to an uninterrupted run.
//
// Record framing: u32 little-endian payload length, u64 little-endian
// CRC64 (ECMA) of the payload, then the JSON payload.  Appends are
// fsync'd before the submission is acknowledged.  Replay stops at the
// first frame that fails its length or CRC check — a torn tail from a
// crash mid-append loses at most the final record, never the log — and
// the file is truncated back to the valid prefix so later appends stay
// readable.
//
// Record semantics (idempotent by job id; the LAST record wins):
//
//	submit  the job exists; payload rebuilds its Spec (dataset digest,
//	        labels, canonical options, nprocs/every, tenant, class)
//	start   a worker picked it up (progress hint only: resume identity
//	        is the content key, not the lifecycle phase)
//	ckpt    a checkpoint covering [0, next) was durably written
//	plan / shard / redispatch
//	        the distributed merge ledger (see ledger.go): the shard
//	        plan, accepted deliveries, and re-dispatch audit records
//	        of a coordinator-run job, replayed so a restarted
//	        coordinator re-dispatches only undelivered windows
//	done / fail / cancel
//	        terminal — the job is never replayed
//
// Deliberately NOT journaled: cache hits (no work to redo) and
// shutdown-driven cancellations (a SIGTERM'd daemon's queued and
// running jobs are exactly the ones a restart must revive, so they
// keep their pending journal state).
//
// Compaction: when the live file exceeds compactEvery frames it is
// rewritten — one submit (plus latest ckpt hint) per pending job — via
// an atomic rename, bounding the log by the number of live jobs rather
// than the daemon's lifetime.

// journalRecord is one journal frame's payload.
type journalRecord struct {
	T  string `json:"t"`
	ID string `json:"id"`
	// Key pins the content identity the replay recomputation must match;
	// a mismatch marks the record corrupt rather than running the wrong
	// analysis under a recycled id.
	Key string `json:"key,omitempty"`
	// Submit payload: the durable form of the Spec.  The matrix itself
	// never enters the journal — Dataset is the content address of its
	// .spb mirror.
	Dataset string        `json:"dataset,omitempty"`
	Labels  []int         `json:"labels,omitempty"`
	Opt     *core.Options `json:"opt,omitempty"`
	NProcs  int           `json:"nprocs,omitempty"`
	Every   int64         `json:"every,omitempty"`
	Tenant  string        `json:"tenant,omitempty"`
	Class   string        `json:"class,omitempty"`
	// Next is the checkpoint progress hint carried by ckpt records.
	Next int64 `json:"next,omitempty"`
	// Distributed merge-ledger payloads (see ledger.go): Plan for "plan"
	// records, Shard for "shard" records, Redispatch for "redispatch".
	Plan       *LedgerState      `json:"plan,omitempty"`
	Shard      *LedgerDelivery   `json:"shard,omitempty"`
	Redispatch *ledgerRedispatch `json:"redispatch,omitempty"`
}

// journalEntry is the live, compaction-driving view of one job id.
type journalEntry struct {
	submit   *journalRecord // nil once terminal (payload released)
	lastType string
	next     int64
	// ledger is the distributed merge ledger accumulated from plan/shard
	// records; nil until a plan record lands, reset by each plan record,
	// released at the terminal record.
	ledger *LedgerState
}

func (e *journalEntry) terminal() bool {
	switch e.lastType {
	case "done", "fail", "cancel":
		return true
	}
	return false
}

var journalCRCTable = crc64.MakeTable(crc64.ECMA)

// journalFileName is the single live journal file inside JournalDir.
const journalFileName = "journal.log"

// jobJournal owns the append fd and the live entry view.  It has its
// own mutex: appends from the Submit path run under the manager lock
// (per-id record order is the manager's state order), while ckpt
// records append from Save callbacks without it.
type jobJournal struct {
	mu           sync.Mutex
	path         string
	f            *os.File
	frames       int
	compactEvery int
	entries      map[string]*journalEntry
}

// journalReplay is what openJournal learned from the existing log.
type journalReplay struct {
	// Pending lists the submit records of non-terminal jobs, in id
	// order — the re-admission work list.
	Pending []*journalRecord
	// CkptNext maps pending ids to their newest journaled checkpoint
	// index (progress hint; resume reads the checkpoint store).
	CkptNext map[string]int64
	// Ledgers maps pending ids to their replayed distributed merge
	// ledgers (plan + verified-framing deliveries); the coordinator
	// re-validates delivery CRCs and span coverage before adopting.
	Ledgers map[string]*LedgerState
	// Frames and CorruptFrames count what the scan saw; MaxSeq is the
	// highest job sequence number any record named.
	Frames        int
	CorruptFrames int
	MaxSeq        int64
}

// appendFrame frames rec into buf.
func appendFrame(buf []byte, rec *journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(payload, journalCRCTable))
	return append(buf, payload...), nil
}

// scanJournal walks data frame by frame, calling visit for each valid
// record.  It returns the number of valid frames, the byte length of
// the valid prefix, and whether a bad frame stopped the scan.
func scanJournal(data []byte, visit func(*journalRecord)) (frames int, validLen int, truncated bool) {
	off := 0
	for off < len(data) {
		if len(data)-off < 12 {
			return frames, off, true
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint64(data[off+4:])
		// A frame longer than the remaining file, or absurdly large, is
		// a torn or corrupt length word.
		if n < 2 || n > 1<<24 || off+12+n > len(data) {
			return frames, off, true
		}
		payload := data[off+12 : off+12+n]
		if crc64.Checksum(payload, journalCRCTable) != sum {
			return frames, off, true
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.T == "" || rec.ID == "" {
			return frames, off, true
		}
		visit(&rec)
		frames++
		off += 12 + n
	}
	return frames, off, false
}

// jobSeq parses a job id of the form "j%06d" back to its sequence
// number; 0 for anything else.
func jobSeq(id string) int64 {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// openJournal replays (and truncates to the valid prefix of) the log in
// dir, then opens it for appending.
func openJournal(dir string, compactEvery int) (*jobJournal, *journalReplay, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	if compactEvery < 1 {
		compactEvery = 4096
	}
	jl := &jobJournal{
		path:         filepath.Join(dir, journalFileName),
		compactEvery: compactEvery,
		entries:      make(map[string]*journalEntry),
	}
	rep := &journalReplay{CkptNext: make(map[string]int64), Ledgers: make(map[string]*LedgerState)}

	data, err := os.ReadFile(jl.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobs: reading journal: %w", err)
	}
	frames, validLen, truncated := scanJournal(data, func(rec *journalRecord) {
		if s := jobSeq(rec.ID); s > rep.MaxSeq {
			rep.MaxSeq = s
		}
		jl.apply(rec)
	})
	jl.frames = frames
	rep.Frames = frames
	if truncated {
		rep.CorruptFrames = 1
	}

	// Truncate the torn tail so future appends land after valid frames.
	if truncated && validLen < len(data) {
		if err := os.Truncate(jl.path, int64(validLen)); err != nil {
			return nil, nil, fmt.Errorf("jobs: truncating torn journal tail: %w", err)
		}
	}

	ids := make([]string, 0, len(jl.entries))
	for id, e := range jl.entries {
		if !e.terminal() && e.submit != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return jobSeq(ids[a]) < jobSeq(ids[b]) })
	for _, id := range ids {
		rep.Pending = append(rep.Pending, jl.entries[id].submit)
		if n := jl.entries[id].next; n > 0 {
			rep.CkptNext[id] = n
		}
		// Hand the replay a shallow snapshot: later appends extend the
		// live entry's slice without disturbing this header.
		if led := jl.entries[id].ledger; led != nil {
			cp := *led
			rep.Ledgers[id] = &cp
		}
	}

	f, err := os.OpenFile(jl.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	jl.f = f
	return jl, rep, nil
}

// apply folds one record into the live entry view.  Callers hold jl.mu
// (or run before concurrency exists, in openJournal).
func (jl *jobJournal) apply(rec *journalRecord) {
	e := jl.entries[rec.ID]
	if e == nil {
		e = &journalEntry{}
		jl.entries[rec.ID] = e
	}
	e.lastType = rec.T
	switch rec.T {
	case "submit":
		e.submit = rec
	case "ckpt":
		if rec.Next > e.next {
			e.next = rec.Next
		}
	case "plan":
		// A plan supersedes any earlier plan AND its deliveries: the
		// coordinator writes one exactly when replayed state was invalid.
		if rec.Plan != nil {
			st := *rec.Plan
			st.Deliveries = nil
			e.ledger = &st
		}
	case "shard":
		// Deliveries without a live plan (the plan append itself failed)
		// are dropped: replay must never trust counts it cannot anchor to
		// a validated span layout.
		if e.ledger != nil && rec.Shard != nil {
			e.ledger.Deliveries = append(e.ledger.Deliveries, *rec.Shard)
		}
	case "redispatch":
		// Audit only; nothing to fold.
	case "done", "fail", "cancel":
		e.submit = nil // payload no longer needed; entry stays terminal
		e.ledger = nil
	}
}

// append frames rec, writes and fsyncs it, and compacts when the file
// has grown past the bound.  An append error leaves the journal open:
// durability is degraded (the caller surfaces it), service is not.
func (jl *jobJournal) append(rec *journalRecord) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return fmt.Errorf("jobs: journal closed")
	}
	jl.apply(rec)
	if err := faultinject.Before("journal.append", rec.ID); err != nil {
		return err
	}
	frame, err := appendFrame(nil, rec)
	if err != nil {
		return err
	}
	frame, fault := faultinject.MutateWrite("journal.append", frame)
	if _, err := jl.f.Write(frame); err != nil {
		return err
	}
	if err := jl.f.Sync(); err != nil {
		return err
	}
	if fault == faultinject.WriteTorn {
		return fmt.Errorf("jobs: journal append: %w", faultinject.ErrInjected)
	}
	jl.frames++
	if jl.frames >= jl.compactEvery {
		return jl.compactLocked()
	}
	return nil
}

// compact rewrites the journal to one submit (+ checkpoint hint) per
// pending job, dropping terminal history.
func (jl *jobJournal) compact() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.compactLocked()
}

func (jl *jobJournal) compactLocked() error {
	ids := make([]string, 0, len(jl.entries))
	for id, e := range jl.entries {
		if !e.terminal() && e.submit != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return jobSeq(ids[a]) < jobSeq(ids[b]) })
	var buf []byte
	frames := 0
	var err error
	for _, id := range ids {
		e := jl.entries[id]
		if buf, err = appendFrame(buf, e.submit); err != nil {
			return err
		}
		frames++
		if e.next > 0 {
			if buf, err = appendFrame(buf, &journalRecord{T: "ckpt", ID: id, Key: e.submit.Key, Next: e.next}); err != nil {
				return err
			}
			frames++
		}
		// Rewrite the merge ledger: one plan frame plus one frame per
		// delivery (redispatch audit records are dropped here).
		if e.ledger != nil {
			plan := *e.ledger
			plan.Deliveries = nil
			if buf, err = appendFrame(buf, &journalRecord{T: "plan", ID: id, Key: e.submit.Key, Plan: &plan}); err != nil {
				return err
			}
			frames++
			for i := range e.ledger.Deliveries {
				if buf, err = appendFrame(buf, &journalRecord{T: "shard", ID: id, Key: e.submit.Key, Shard: &e.ledger.Deliveries[i]}); err != nil {
					return err
				}
				frames++
			}
		}
	}
	if err := durable.WriteFileAtomic(jl.path, buf, "journal.compact"); err != nil {
		return err
	}
	// The rename orphaned the append fd; reopen on the new inode.  Drop
	// terminal entries from the live view — they are no longer on disk.
	if jl.f != nil {
		jl.f.Close()
	}
	f, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		jl.f = nil
		return err
	}
	jl.f = f
	jl.frames = frames
	for id, e := range jl.entries {
		if e.terminal() {
			delete(jl.entries, id)
		}
	}
	return nil
}

// pendingCount reports non-terminal journaled jobs (Stats surface).
func (jl *jobJournal) pendingCount() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	n := 0
	for _, e := range jl.entries {
		if !e.terminal() && e.submit != nil {
			n++
		}
	}
	return n
}

// close releases the append fd.
func (jl *jobJournal) close() {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
}

// submitRecord builds the durable form of a job at admission time.
func submitRecord(j *job, datasetDigest string) *journalRecord {
	opt := j.spec.Opt
	return &journalRecord{
		T:       "submit",
		ID:      j.id,
		Key:     j.key,
		Dataset: datasetDigest,
		Labels:  j.spec.Labels,
		Opt:     &opt,
		NProcs:  j.spec.NProcs,
		Every:   j.spec.Every,
		Tenant:  j.tenant,
		Class:   j.class.String(),
	}
}
