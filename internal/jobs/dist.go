package jobs

import (
	"context"
	"errors"
	"time"

	"sprint/internal/core"
	"sprint/internal/matrix"
)

// This file is the jobs layer's two-sided surface for cluster mode,
// kept dependency-free of internal/cluster (cluster imports jobs, never
// the reverse):
//
//   - Coordinator side: a Manager configured with a Distributor hands
//     popped jobs to it instead of running them on the local kernel.
//     The distributor may decline (ErrNotDistributed) — no live
//     workers, B too small to be worth shipping — and the job falls
//     back to the bit-identical local path.
//   - Worker side: PreparedDataset resolves a shard request's
//     content-addressed dataset id to the registry's shared
//     preparation, pinning the entry for the duration of the shard so
//     LRU eviction cannot race a running shard.  One Prepare per
//     (dataset, labels, prep options) serves every shard, exactly as it
//     serves every local job.

// DistRequest carries everything a distributor needs to run one job's
// permutation plan across the cluster.
type DistRequest struct {
	// Key is the job's content key (cache/checkpoint identity).
	Key string
	// DatasetID is the content address workers pull the dataset by.  It
	// is always set: matrix submissions are digested at dispatch time,
	// so no matrix bytes ride the shard path either way.
	DatasetID string
	// Matrix holds the coordinator-resident cells, used only to push
	// the dataset to a worker that answers 404 for DatasetID.
	Matrix matrix.Matrix
	// Labels and Opt (canonical) define the analysis.
	Labels []int
	Opt    core.Options
	// Prepared is the coordinator's shared preparation: the distributor
	// plans, fingerprints and finalizes against it, and computes local
	// fallback shards over it.
	Prepared *core.Prepared
	// Resume, when non-nil, is the job's saved prefix checkpoint; a
	// distributor whose plan fingerprint matches merges it as an
	// already-computed shard covering [0, Resume.Next).
	Resume *core.Checkpoint
	// NProcs and Every are the submitter's rank count and window, for
	// coordinator-local fallback shards.
	NProcs int
	Every  int64
	// OnProgress observes merged permutation counts as shards land.
	OnProgress func(done, total int64)
	// Ledger is the job's durable merge ledger handle (nil when the
	// manager has no journal).  The distributor adopts its replayed
	// state after a coordinator restart and journals the plan and every
	// accepted delivery through it.
	Ledger *JobLedger
}

// Distributor runs one job's permutation plan across worker nodes and
// returns the finalized result, bitwise identical to a local run.  A
// distributor that declines the job returns ErrNotDistributed and the
// manager runs it locally.
type Distributor interface {
	RunJob(ctx context.Context, req DistRequest) (*core.Result, error)
}

// ErrNotDistributed is returned by a Distributor that declines a job:
// the manager falls back to the local execution path.
var ErrNotDistributed = errors.New("jobs: job not distributed")

// runDistributed builds the dispatch request for one popped job and
// hands it to the configured distributor.
func (m *Manager) runDistributed(ctx context.Context, j *job, prepared *core.Prepared, resume *core.Checkpoint) (*core.Result, error) {
	req := DistRequest{
		Key:    j.key,
		Labels: j.spec.Labels,
		Opt:    j.spec.Opt,
		Resume: resume,
		NProcs: j.spec.NProcs,
		Every:  j.spec.Every,
		OnProgress: func(done, total int64) {
			m.mu.Lock()
			j.done, j.total = done, total
			m.mu.Unlock()
		},
		Ledger: m.ledgerFor(j),
	}
	if j.spec.DatasetID != "" {
		// j.ds is pinned from submission to the terminal state, so the
		// entry's matrix is immutable and safe to alias here.
		req.DatasetID = j.spec.DatasetID
		req.Matrix = j.ds.m
		req.Prepared = prepared
	} else {
		// Matrix submissions enter the content-addressed plane at
		// dispatch: digest once, prepare once, and workers pull (or are
		// pushed) the same bytes any dataset job would use.
		req.DatasetID = DatasetDigest(j.data)
		req.Matrix = j.data
		p, err := core.Prepare(j.data, j.spec.Labels, j.spec.Opt)
		if err != nil {
			return nil, err
		}
		req.Prepared = p
	}
	return m.cfg.Distributor.RunJob(ctx, req)
}

// PreparedDataset is the worker-side shard surface: it resolves a
// content-addressed dataset id to the registry's shared preparation for
// (labels, opt), building it on first use exactly like a local dataset
// job would.  The returned release function drops the reference that
// pins the dataset entry for the caller; it must be called once the
// shard is done with the preparation.
func (m *Manager) PreparedDataset(id string, labels []int, opt core.Options) (*core.Prepared, func(), error) {
	canon, err := core.CanonicalOptions(opt)
	if err != nil {
		return nil, nil, err
	}
	e, err := m.datasetRef(id)
	if err != nil {
		return nil, nil, err
	}
	release := func() {
		m.mu.Lock()
		m.releaseDatasetLocked(e)
		m.mu.Unlock()
	}
	p, err := m.prepFromEntry(e, labels, canon)
	if err != nil {
		release()
		return nil, nil, err
	}
	return p, release, nil
}

// prepFromEntry returns the entry's shared preparation for (labels,
// opt), building it on first use.  Concurrent first users of one key
// block on a single build; everyone else reuses the cached value.  opt
// must be canonical and the caller must hold a reference on e.
func (m *Manager) prepFromEntry(e *dsEntry, labels []int, opt core.Options) (*core.Prepared, error) {
	m.mu.Lock()
	now := m.cfg.Clock()
	slot, _ := m.datasets.prepSlotFor(e, opt, labels, now)
	m.datasets.touch(e, now)
	m.mu.Unlock()

	built := false
	slot.once.Do(func() {
		built = true
		buildStart := time.Now()
		slot.prepared, slot.err = core.Prepare(e.m, labels, opt)
		m.met.stagePrep.ObserveDuration(time.Since(buildStart))
	})
	m.mu.Lock()
	// Exactly one caller per slot observes built (whoever won the Once,
	// which under a race need not be the slot's creator); everyone else
	// reused a preparation they did not pay for.
	if built {
		m.stats.PrepBuilds++
	} else {
		m.stats.PrepHits++
	}
	m.mu.Unlock()
	if built {
		m.met.prepBuilds.Inc()
	} else {
		m.met.prepHits.Inc()
	}
	return slot.prepared, slot.err
}
