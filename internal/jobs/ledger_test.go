package jobs

import (
	"testing"

	"sprint/internal/core"
)

// ledgerTestJournal opens a journal in a temp dir with one submitted job
// and returns (dir, journal, job id).
func ledgerTestJournal(t *testing.T, compactEvery int) (string, *jobJournal, string) {
	t.Helper()
	dir := t.TempDir()
	jl, _, err := openJournal(dir, compactEvery)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	id := "j000001"
	if err := jl.append(&journalRecord{
		T: "submit", ID: id, Key: "k1",
		Dataset: "sha256:abc", Labels: []int{0, 0, 1, 1}, Opt: &opt,
	}); err != nil {
		t.Fatal(err)
	}
	return dir, jl, id
}

func testPlan(rows int) *LedgerState {
	return &LedgerState{
		Fingerprint: 0xfeed, TotalB: 100, Rows: rows,
		Spans: [][2]int64{{0, 50}, {50, 100}},
	}
}

func testDelivery(lo, next, hi int64, rows int, v int64) *LedgerDelivery {
	raw := make([]int64, rows)
	adj := make([]int64, rows)
	for i := range raw {
		raw[i], adj[i] = v, v
	}
	return &LedgerDelivery{Lo: lo, Next: next, Hi: hi, B: next - lo, Raw: raw, Adj: adj, CRC64: 7, Worker: "w"}
}

// TestJournalLedgerReplay pins the merge-ledger record semantics: plan +
// shard records replay into a LedgerState for the pending job, a second
// plan record RESETS the accumulated deliveries, redispatch records are
// audit-only, and a terminal record drops the ledger entirely.
func TestJournalLedgerReplay(t *testing.T) {
	const rows = 3
	dir, jl, id := ledgerTestJournal(t, 0)
	must := func(rec *journalRecord) {
		t.Helper()
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(&journalRecord{T: "plan", ID: id, Key: "k1", Plan: testPlan(rows)})
	must(&journalRecord{T: "shard", ID: id, Key: "k1", Shard: testDelivery(0, 50, 50, rows, 1)})
	must(&journalRecord{T: "redispatch", ID: id, Key: "k1",
		Redispatch: &ledgerRedispatch{Lo: 50, Hi: 100, Worker: "w", Reason: "error"}})
	must(&journalRecord{T: "shard", ID: id, Key: "k1", Shard: testDelivery(50, 80, 100, rows, 2)})
	jl.close()

	jl2, rep, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	led := rep.Ledgers[id]
	if led == nil {
		t.Fatal("no replayed ledger for the pending job")
	}
	if led.Fingerprint != 0xfeed || led.TotalB != 100 || led.Rows != rows || len(led.Spans) != 2 {
		t.Fatalf("replayed plan drifted: %+v", led)
	}
	if len(led.Deliveries) != 2 {
		t.Fatalf("replayed %d deliveries, want 2", len(led.Deliveries))
	}
	d := led.Deliveries[1]
	if d.Lo != 50 || d.Next != 80 || d.Hi != 100 || d.B != 30 || d.Raw[0] != 2 || d.Worker != "w" {
		t.Fatalf("delivery payload drifted: %+v", d)
	}

	// A fresh plan record supersedes the old plan AND its deliveries.
	if err := jl2.append(&journalRecord{T: "plan", ID: id, Key: "k1", Plan: testPlan(rows)}); err != nil {
		t.Fatal(err)
	}
	jl2.close()
	jl3, rep3, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if led := rep3.Ledgers[id]; led == nil || len(led.Deliveries) != 0 {
		t.Fatalf("plan record did not reset deliveries: %+v", led)
	}

	// Terminal drops the ledger.
	if err := jl3.append(&journalRecord{T: "done", ID: id, Key: "k1"}); err != nil {
		t.Fatal(err)
	}
	jl3.close()
	_, rep4, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep4.Ledgers) != 0 || len(rep4.Pending) != 0 {
		t.Fatalf("terminal job still pending: ledgers=%d pending=%d", len(rep4.Ledgers), len(rep4.Pending))
	}
}

// TestJournalLedgerCompaction pins the compaction round trip: the ledger
// survives as one plan frame plus one frame per delivery (redispatch
// audit history is dropped), and a shard record without a live plan is
// never replayed.
func TestJournalLedgerCompaction(t *testing.T) {
	const rows = 2
	dir, jl, id := ledgerTestJournal(t, 0)
	if err := jl.append(&journalRecord{T: "plan", ID: id, Key: "k1", Plan: testPlan(rows)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := jl.append(&journalRecord{T: "redispatch", ID: id, Key: "k1",
			Redispatch: &ledgerRedispatch{Lo: 0, Hi: 50, Reason: "straggler"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.append(&journalRecord{T: "shard", ID: id, Key: "k1", Shard: testDelivery(0, 50, 50, rows, 9)}); err != nil {
		t.Fatal(err)
	}
	if err := jl.compact(); err != nil {
		t.Fatal(err)
	}
	// submit + plan + 1 shard — the redispatch frames are gone.
	if jl.frames != 3 {
		t.Fatalf("compacted to %d frames, want 3", jl.frames)
	}
	jl.close()

	_, rep, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	led := rep.Ledgers[id]
	if led == nil || len(led.Deliveries) != 1 || led.Deliveries[0].Raw[0] != 9 {
		t.Fatalf("compacted ledger did not replay: %+v", led)
	}

	// An orphan shard record (no plan — e.g. the plan frame was lost to a
	// torn tail) must not replay: counts without a validated span layout
	// are untrustworthy.
	dir2 := t.TempDir()
	jl2, _, err := openJournal(dir2, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	for _, rec := range []*journalRecord{
		{T: "submit", ID: "j000002", Key: "k2", Dataset: "sha256:def", Labels: []int{0, 1}, Opt: &opt},
		{T: "shard", ID: "j000002", Key: "k2", Shard: testDelivery(0, 50, 50, rows, 1)},
	} {
		if err := jl2.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl2.close()
	_, rep2, err := openJournal(dir2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if led := rep2.Ledgers["j000002"]; led != nil {
		t.Fatalf("orphan delivery replayed without a plan: %+v", led)
	}
	if len(rep2.Pending) != 1 {
		t.Fatalf("pending = %d, want 1 (job itself still replays)", len(rep2.Pending))
	}
}
