package jobs

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprint/internal/core"
	"sprint/internal/microarray"
)

func testSpec(t *testing.T) Spec {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 50, Samples: 12, Classes: 2,
		DiffFraction: 0.1, EffectSize: 2.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.B = 600
	opt.Seed = 9
	return Spec{X: data.X, Labels: data.Labels, Opt: opt, NProcs: 2, Every: 100}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

func sameFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: got %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestJobMatchesMaxT(t *testing.T) {
	spec := testSpec(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Queued || st.CacheHit {
		t.Fatalf("initial status %+v", st)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != Done || fin.Done != spec.Opt.B || fin.Total != spec.Opt.B {
		t.Fatalf("final status %+v", fin)
	}
	res, _, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaxT(spec.X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
	sameFloats(t, "RawP", res.RawP, want.RawP)
	sameFloats(t, "Stat", res.Stat, want.Stat)
}

func TestCacheHit(t *testing.T) {
	spec := testSpec(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st1, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st1.ID)

	// An equivalent submission — different NProcs, window, and spelled-out
	// default options — is served from the cache without computing.
	spec2 := spec
	spec2.NProcs = 1
	spec2.Every = 7
	spec2.Opt.Test = "" // canonicalises to "t"
	st2, err := m.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != Done || !st2.CacheHit {
		t.Fatalf("resubmission status %+v, want immediate cached Done", st2)
	}
	if st2.Key != st1.Key {
		t.Fatalf("keys differ: %s vs %s", st1.Key, st2.Key)
	}
	res1, _, err := m.Result(st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := m.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Fatal("cache hit returned a different result object")
	}
	s := m.StatsSnapshot()
	if s.CacheHits != 1 || s.Completed != 1 || s.Submitted != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCancelThenResubmitResumes(t *testing.T) {
	spec := testSpec(t)
	var mgr atomic.Pointer[Manager]
	cancelled := make(chan struct{})
	var once atomic.Bool
	m, err := NewManager(Config{
		Workers: 1,
		OnCheckpoint: func(id string, done, total int64) {
			// Deterministically cancel the first job after its second
			// window (200 of 600 permutations).
			if done >= 200 && once.CompareAndSwap(false, true) {
				if _, err := mgr.Load().Cancel(id); err != nil {
					t.Errorf("cancel: %v", err)
				}
				close(cancelled)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Store(m)
	defer m.Close()

	st1, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin1 := waitTerminal(t, m, st1.ID)
	<-cancelled
	if fin1.State != Cancelled {
		t.Fatalf("first job state %s, want cancelled", fin1.State)
	}
	if fin1.Done < 200 || fin1.Done >= spec.Opt.B {
		t.Fatalf("cancelled after %d permutations, want in [200, %d)", fin1.Done, spec.Opt.B)
	}
	if _, _, err := m.Result(st1.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of cancelled job: %v, want ErrNotDone", err)
	}

	// The identical resubmission resumes from the retained checkpoint:
	// it re-runs strictly fewer permutations than B.
	st2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHit {
		t.Fatal("resubmission was a cache hit; cancelled job must not populate the cache")
	}
	fin2 := waitTerminal(t, m, st2.ID)
	if fin2.State != Done {
		t.Fatalf("resubmission state %s (err %q)", fin2.State, fin2.Error)
	}
	if fin2.ResumedFrom < 200 {
		t.Fatalf("ResumedFrom = %d, want >= 200", fin2.ResumedFrom)
	}
	if rerun := fin2.Total - fin2.ResumedFrom; rerun >= spec.Opt.B {
		t.Fatalf("resumed job re-ran %d permutations, want < %d", rerun, spec.Opt.B)
	}

	res, _, err := m.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaxT(spec.X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)

	s := m.StatsSnapshot()
	if s.Cancelled != 1 || s.Resumed != 1 || s.Completed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCheckpointSurvivesRestart(t *testing.T) {
	spec := testSpec(t)
	dir := t.TempDir()
	var mgr atomic.Pointer[Manager]
	var once atomic.Bool
	m1, err := NewManager(Config{
		Workers:       1,
		CheckpointDir: dir,
		OnCheckpoint: func(id string, done, total int64) {
			if done >= 200 && once.CompareAndSwap(false, true) {
				mgr.Load().Cancel(id)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Store(m1)
	st1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin1 := waitTerminal(t, m1, st1.ID)
	if fin1.State != Cancelled {
		t.Fatalf("first job state %s", fin1.State)
	}
	m1.Close() // "daemon restart"

	m2, err := NewManager(Config{Workers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st2, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitTerminal(t, m2, st2.ID)
	if fin2.State != Done || fin2.ResumedFrom < 200 {
		t.Fatalf("post-restart job %+v, want Done resumed from >= 200", fin2)
	}
	want, err := core.MaxT(spec.X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := m2.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
}

func TestQueueFull(t *testing.T) {
	spec := testSpec(t)
	// Park the single worker inside the first job's first checkpoint, so
	// the depth-1 queue fills deterministically.
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	var first atomic.Bool
	m, err := NewManager(Config{
		Workers: 1, QueueDepth: 1,
		OnCheckpoint: func(id string, done, total int64) {
			if first.CompareAndSwap(false, true) {
				<-block
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer release() // unblock before Close so the worker can drain
	running, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job holds the worker so the queue is truly idle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := m.Get(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	spec2 := spec
	spec2.Opt.Seed++ // distinct key, no cache interference
	if _, err := m.Submit(spec2); err != nil {
		t.Fatal(err)
	}
	spec3 := spec
	spec3.Opt.Seed += 2
	if _, err := m.Submit(spec3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: %v, want ErrQueueFull", err)
	}
	release()
	if st := waitTerminal(t, m, running.ID); st.State != Done {
		t.Fatalf("first job %+v after release", st)
	}
}

func TestKeyExcludesNonSemanticFields(t *testing.T) {
	spec := testSpec(t)
	k1, err := Key(spec.X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	opt := spec.Opt
	opt.ScalarParams = true // wire protocol only; result-identical
	k2, err := Key(spec.X, spec.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("ScalarParams changed the content key")
	}
	opt = spec.Opt
	opt.Seed++
	k3, err := Key(spec.X, spec.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("seed change did not change the content key")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Submit(testSpec(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}
