// Package jobs implements the asynchronous job layer of pmaxtd: a bounded
// FIFO queue of permutation-testing analyses, a worker pool that runs them
// through core.Run with per-job rank counts, a content-addressed cache of
// finished results, and a checkpoint store that lets a cancelled, evicted
// or crashed job resume where it stopped instead of restarting.
//
// The design follows the service shape the paper's pmaxT implies but never
// builds: the analysis itself is deterministic and bit-identical for any
// partitioning (Section 3.2), so a job is fully described by its inputs —
// dataset, class labels and options.  That determinism is what makes both
// the cache and the checkpoint store safe: once a run of a content key
// finishes, every later submission of that key is answered from the
// cache, and a half-finished run's exceedance counts are a valid prefix
// of any later run of the same key.  (Identical submissions that are
// simultaneously in flight each compute independently — the cache dedups
// completed work, not running work.)
package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"time"

	"sprint/internal/core"
	"sprint/internal/matrix"
)

// Spec describes one analysis submission.
type Spec struct {
	// X is the expression matrix (rows = genes, columns = samples) and
	// Labels assigns each column a class, exactly as in core.MaxT.
	X      [][]float64
	Labels []int
	// XFlat, when non-nil, supplies the matrix as one flat column-major
	// buffer (R's native layout: Genes×Samples values, column by column)
	// instead of X.  The manager transposes a private copy into the
	// engine's row-major layout; the caller's slice is never modified, so
	// a submission rejected with ErrQueueFull can be retried verbatim.
	// Exactly one of X, XFlat and DatasetID must be set.
	XFlat          []float64
	Genes, Samples int
	// DatasetID submits against a matrix previously registered with
	// Manager.PutDataset (or the PUT /v1/datasets endpoint): the
	// submission carries no matrix at all, the content key is derived
	// from the registered digest without touching a single cell, and the
	// run reuses the registry's cached preparation (scrub, rank
	// transform, moment precompute) when one exists for this (labels,
	// options) combination.
	DatasetID string
	// Opt configures the analysis.  Zero-valued fields take the mt.maxT
	// defaults (core.DefaultOptions semantics via canonicalisation).
	Opt core.Options
	// NProcs is the rank count for this job's kernel; values < 1 take the
	// manager's default.
	NProcs int
	// Every is the checkpoint/progress window in permutations; values < 1
	// take the manager's default.
	Every int64
	// Tenant names the submitting tenant for rate limiting and accounting
	// (the X-Tenant header over HTTP).  Empty is the anonymous tenant.
	// Tenant never enters the content key: identical analyses from
	// different tenants share cache and checkpoints.
	Tenant string
	// Class optionally forces the fairness class: "interactive" or
	// "bulk".  Empty classifies by size (B at most the manager's
	// InteractiveMaxB, and sampled rather than complete, is interactive).
	// Like Tenant, it never enters the content key.
	Class string
}

// State is a job's lifecycle phase.
type State string

const (
	// Queued jobs wait in the FIFO for a free worker.
	Queued State = "queued"
	// Running jobs own a worker and are processing permutations.
	Running State = "running"
	// Done jobs finished; their result is in the cache.
	Done State = "done"
	// Failed jobs stopped with a non-cancellation error.
	Failed State = "failed"
	// Cancelled jobs were stopped by request (or shutdown); their last
	// checkpoint is retained so a resubmission resumes, not restarts.
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Status is a point-in-time snapshot of a job.
type Status struct {
	// ID identifies the job; Key is the content address of its inputs
	// (dataset hash + canonical options), shared by identical submissions.
	ID  string
	Key string
	// State is the lifecycle phase; Error is set for Failed jobs.
	State State
	Error string
	// Done and Total track permutation progress, including permutations
	// inherited from a resumed checkpoint.  Total is 0 until the run has
	// planned its permutation count (relevant for complete enumerations).
	Done  int64
	Total int64
	// ResumedFrom is the first permutation index this run actually
	// processed when it resumed a checkpoint; 0 for fresh runs.
	ResumedFrom int64
	// CacheHit reports that the job was answered from the result cache
	// without computing anything.
	CacheHit bool
	// NProcs is the rank count the job runs with.
	NProcs int
	// Tenant and Class report the admission identity the job ran under.
	Tenant string
	Class  string
	// Mode names the engine the job runs under ("exact" or "sequential"),
	// resolved from the canonical options at submission.
	Mode string
	// SeqActiveRows and SeqPermsSaved track sequential-mode progress: the
	// rows still accumulating and the per-row permutation evaluations
	// already avoided relative to the planned total.  Zero on exact jobs.
	SeqActiveRows int
	SeqPermsSaved int64
	// Profile holds the five-section time profile once the job is Done
	// (zero for cache hits, which time nothing).
	Profile core.Profile
	// SubmittedAt, StartedAt and FinishedAt stamp the lifecycle; zero when
	// the phase has not happened.
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

// validate checks the matrix payload's shape without copying anything.
func (s *Spec) validate() error {
	if s.DatasetID != "" {
		if s.X != nil || s.XFlat != nil {
			return fmt.Errorf("jobs: submission carries both a dataset id and a matrix payload")
		}
		return nil
	}
	if s.XFlat != nil {
		if s.X != nil {
			return fmt.Errorf("jobs: submission carries both X and XFlat")
		}
		if s.Genes < 1 || s.Samples < 1 {
			return fmt.Errorf("jobs: flat submission needs positive Genes and Samples, got %dx%d", s.Genes, s.Samples)
		}
		if len(s.XFlat) != s.Genes*s.Samples {
			return fmt.Errorf("jobs: flat submission has %d values for %d genes × %d samples",
				len(s.XFlat), s.Genes, s.Samples)
		}
		return nil
	}
	if len(s.X) == 0 {
		return fmt.Errorf("jobs: empty input matrix")
	}
	cols := len(s.X[0])
	if cols == 0 {
		return fmt.Errorf("jobs: matrix row 0 has no columns")
	}
	for i, row := range s.X {
		if len(row) != cols {
			return fmt.Errorf("jobs: matrix row %d has %d columns, row 0 has %d", i, len(row), cols)
		}
	}
	return nil
}

// resolve converts the submission's matrix payload (row slices or a flat
// column-major buffer) into the engine's flat row-major matrix.  The
// caller's buffers are never modified: the flat form is transposed on a
// private copy, so a submission rejected later (queue full, closed
// manager) can be retried verbatim.
func (s *Spec) resolve() (matrix.Matrix, error) {
	if err := s.validate(); err != nil {
		return matrix.Matrix{}, err
	}
	if s.DatasetID != "" {
		// Dataset submissions never resolve a matrix here: the worker
		// fetches the registry's shared preparation instead.
		return matrix.Matrix{}, fmt.Errorf("jobs: dataset submissions have no matrix payload to resolve")
	}
	if s.XFlat != nil {
		buf := append([]float64(nil), s.XFlat...)
		return matrix.FromColumnMajor(buf, s.Genes, s.Samples), nil
	}
	m, err := matrix.FromRows(s.X)
	if err != nil {
		return matrix.Matrix{}, fmt.Errorf("jobs: %w", err)
	}
	return m, nil
}

// contentKey hashes the submission whichever form it arrived in —
// producing exactly KeyMatrix of the resolved matrix — without copying or
// transposing anything, so cache hits and queue-full rejections never pay
// the matrix copy.  Dataset-id submissions hash nothing at all: the id IS
// the matrix digest, so the key costs a few hundred bytes of SHA-256
// instead of a pass over the cells.
func (s *Spec) contentKey() (string, error) {
	if err := s.validate(); err != nil {
		return "", err
	}
	if s.DatasetID != "" {
		return jobKey(s.DatasetID, s.Labels, s.Opt)
	}
	var digest string
	if s.XFlat != nil {
		genes := s.Genes
		digest = datasetDigestAt(genes, s.Samples, func(i, j int) float64 { return s.XFlat[j*genes+i] })
	} else {
		digest = datasetDigestAt(len(s.X), len(s.X[0]), func(i, j int) float64 { return s.X[i][j] })
	}
	return jobKey(digest, s.Labels, s.Opt)
}

// DatasetDigest computes the content address of a matrix: a SHA-256 over
// its dimensions and row-major cell bits (one pass over contiguous
// memory), with every NaN hashed as the one canonical quiet NaN so the
// digest is independent of how a producer spelled its missing values.
// The digest is the dataset id of the registry: same cells, same id —
// however the matrix arrived (rows, flat column-major or binary).
func DatasetDigest(m matrix.Matrix) string {
	return datasetDigestAt(m.Rows, m.Cols, m.At)
}

// datasetDigestAt is DatasetDigest through a cell accessor, so row-slice
// and column-major flat payloads hash without being transposed first.
func datasetDigestAt(rows, cols int, at func(i, j int) float64) string {
	canonNaN := math.Float64bits(math.NaN())
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte("sprint-dataset-v1"))
	writeU64(uint64(rows))
	writeU64(uint64(cols))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := at(i, j)
			if math.IsNaN(v) {
				writeU64(canonNaN)
			} else {
				writeU64(math.Float64bits(v))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KeyMatrix computes the content address of a submission: the dataset
// digest of the matrix combined with the class labels and the canonical
// options.  ScalarParams is excluded — it changes only the broadcast wire
// protocol, never the result — as are NProcs and Every, because results
// are bit-identical for every rank count and window size.  Row-slice,
// flat column-major and dataset-id submissions of the same data therefore
// share one key.
func KeyMatrix(m matrix.Matrix, labels []int, opt core.Options) (string, error) {
	return jobKey(DatasetDigest(m), labels, opt)
}

// jobKey combines a dataset digest with the run identity (labels +
// canonical options) into the content address of one analysis.
func jobKey(datasetDigest string, labels []int, opt core.Options) (string, error) {
	canon, err := core.CanonicalOptions(opt)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	h.Write([]byte("sprint-job-v1"))
	writeStr(datasetDigest)
	writeInt(int64(len(labels)))
	for _, l := range labels {
		writeInt(int64(l))
	}
	writeStr(canon.Test)
	writeStr(canon.Side)
	writeStr(canon.FixedSeedSampling)
	writeStr(canon.Nonpara)
	writeInt(canon.B)
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(canon.NA))
	h.Write(buf[:])
	writeInt(int64(canon.Seed))
	writeInt(canon.MaxComplete)
	// The sequential fields are hashed ONLY for sequential jobs, so every
	// exact-mode key is byte-identical to the keys this layer produced
	// before the mode knob existed — cached exact results stay addressable.
	if canon.Mode == core.ModeSequential {
		writeStr(canon.Mode)
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(canon.SeqAlpha))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(canon.SeqTolerance))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Key is KeyMatrix on the legacy row-per-slice form.
func Key(x [][]float64, labels []int, opt core.Options) (string, error) {
	m, err := matrix.FromRows(x)
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	return KeyMatrix(m, labels, opt)
}

// Errors reported by the manager.
var (
	// ErrQueueFull rejects a submission when the FIFO is at capacity.
	ErrQueueFull = fmt.Errorf("jobs: queue full")
	// ErrClosed rejects operations on a closed manager.
	ErrClosed = fmt.Errorf("jobs: manager closed")
	// ErrUnknownJob reports a job ID the manager does not know.
	ErrUnknownJob = fmt.Errorf("jobs: unknown job")
	// ErrNotDone reports a result request for an unfinished job.
	ErrNotDone = fmt.Errorf("jobs: job not done")
	// ErrUnknownDataset reports a dataset id the registry does not hold
	// (neither in memory nor in its disk mirror).
	ErrUnknownDataset = fmt.Errorf("jobs: unknown dataset")
	// ErrDatasetBusy rejects deleting a dataset that queued or running
	// jobs still hold a reference to.
	ErrDatasetBusy = fmt.Errorf("jobs: dataset in use by queued or running jobs")
	// ErrDatasetsDisabled rejects registry operations when the manager
	// was configured with a negative DatasetCacheSize.
	ErrDatasetsDisabled = fmt.Errorf("jobs: dataset registry disabled")
)
