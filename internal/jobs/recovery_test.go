package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sprint/internal/core"
	"sprint/internal/faultinject"
	"sprint/internal/microarray"
)

// durableDirs is one crash-safe store layout shared across "restarts".
type durableDirs struct {
	journal, ckpt, ds string
}

func newDurableDirs(t *testing.T) durableDirs {
	t.Helper()
	root := t.TempDir()
	return durableDirs{
		journal: filepath.Join(root, "journal"),
		ckpt:    filepath.Join(root, "checkpoints"),
		ds:      filepath.Join(root, "datasets"),
	}
}

func (d durableDirs) config(workers int) Config {
	return Config{
		Workers:       workers,
		JournalDir:    d.journal,
		CheckpointDir: d.ckpt,
		DatasetDir:    d.ds,
	}
}

// waitRecoveredTerminal waits for a replayed job to surface under its
// original id and reach a terminal state.
func waitRecoveredTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := m.Get(id); err == nil && st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reappear and finish after restart", id)
	return Status{}
}

// recoverySpec is a job long enough to be interrupted mid-flight: the
// restart tests need the daemon to die while permutations are genuinely
// outstanding, so B is large relative to the checkpoint window.
func recoverySpec(t *testing.T, seed uint64) Spec {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 100, Samples: 20, Classes: 2,
		DiffFraction: 0.2, EffectSize: 2.0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.B = 100000
	opt.Seed = seed
	return Spec{X: data.X, Labels: data.Labels, Opt: opt, NProcs: 1, Every: 1000}
}

// TestRestartReplaysInterruptedJobs is the tentpole acceptance test: a
// manager carrying one running and several queued jobs is shut down;
// a second manager over the same directories must revive every job
// under its original id and finish each with results bitwise identical
// to an uninterrupted run.
func TestRestartReplaysInterruptedJobs(t *testing.T) {
	dirs := newDurableDirs(t)
	specs := []Spec{recoverySpec(t, 1), recoverySpec(t, 2), recoverySpec(t, 3)}

	m1, err := NewManager(dirs.config(1))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		st, err := m1.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	// Let the first job into its permutation loop, then "crash".
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m1.Get(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if st.State == Running && st.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close()

	m2, err := NewManager(dirs.config(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for i, id := range ids {
		st := waitRecoveredTerminal(t, m2, id)
		if st.State != Done {
			t.Fatalf("job %s replayed to %s (%s), want done", id, st.State, st.Error)
		}
		res, _, err := m2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.MaxT(specs[i].X, specs[i].Labels, specs[i].Opt)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, fmt.Sprintf("job %d AdjP", i), res.AdjP, want.AdjP)
		sameFloats(t, fmt.Sprintf("job %d RawP", i), res.RawP, want.RawP)
		sameFloats(t, fmt.Sprintf("job %d Stat", i), res.Stat, want.Stat)
	}
	s := m2.StatsSnapshot()
	if s.JournalReplayed != int64(len(ids)) {
		t.Fatalf("JournalReplayed %d, want %d", s.JournalReplayed, len(ids))
	}
	if s.Recovering {
		t.Fatal("still recovering after all jobs finished")
	}
}

// TestRestartResumesFromCheckpoint pins that replay does not recompute
// from zero when a durable checkpoint covers a prefix.
func TestRestartResumesFromCheckpoint(t *testing.T) {
	dirs := newDurableDirs(t)
	spec := recoverySpec(t, 7)

	ckptDone := make(chan struct{}, 8)
	cfg := dirs.config(1)
	cfg.OnCheckpoint = func(id string, done, total int64) {
		select {
		case ckptDone <- struct{}{}:
		default:
		}
	}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ckptDone:
	case <-time.After(30 * time.Second):
		t.Fatal("no checkpoint written")
	}
	if got, err := m1.Get(st.ID); err != nil || got.State.Terminal() {
		t.Fatalf("job finished before the crash (%v %v); bump recoverySpec's B", got.State, err)
	}
	m1.Close()

	m2, err := NewManager(dirs.config(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	fin := waitRecoveredTerminal(t, m2, st.ID)
	if fin.State != Done {
		t.Fatalf("replayed job %s (%s)", fin.State, fin.Error)
	}
	if fin.ResumedFrom <= 0 {
		t.Fatalf("ResumedFrom %d, want a checkpointed prefix", fin.ResumedFrom)
	}
	res, _, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaxT(spec.X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
}

// TestRestartWithCorruptCheckpoint flips bytes in the newest checkpoint
// generation: replay must quarantine it, fall back (older generation or
// B=0) and still converge to the bit-exact result.
func TestRestartWithCorruptCheckpoint(t *testing.T) {
	dirs := newDurableDirs(t)
	spec := recoverySpec(t, 9)

	ckptDone := make(chan struct{}, 8)
	cfg := dirs.config(1)
	cfg.OnCheckpoint = func(id string, done, total int64) {
		select {
		case ckptDone <- struct{}{}:
		default:
		}
	}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ckptDone:
	case <-time.After(30 * time.Second):
		t.Fatal("no checkpoint written")
	}
	if got, err := m1.Get(st.ID); err != nil || got.State.Terminal() {
		t.Fatalf("job finished before the crash (%v %v); bump recoverySpec's B", got.State, err)
	}
	m1.Close()

	// Damage every current-generation checkpoint file (not .prev).
	files, err := os.ReadDir(dirs.ckpt)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".prev") || strings.HasSuffix(f.Name(), ".corrupt") {
			continue
		}
		p := filepath.Join(dirs.ckpt, f.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatal("no checkpoint file to damage")
	}

	m2, err := NewManager(dirs.config(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	fin := waitRecoveredTerminal(t, m2, st.ID)
	if fin.State != Done {
		t.Fatalf("replayed job %s (%s)", fin.State, fin.Error)
	}
	res, _, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaxT(spec.X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
	sameFloats(t, "RawP", res.RawP, want.RawP)
	if s := m2.StatsSnapshot(); s.CorruptCheckpoints == 0 {
		t.Fatal("corrupt checkpoint not counted")
	}
	// No .corrupt file remains here: the finished job's drop() removes
	// every generation — TestCkptStoreQuarantine pins the quarantine
	// rename itself.
}

// TestCkptStoreQuarantine pins the disk-level contract: a checkpoint
// file that fails its CRC frame is renamed to .corrupt (kept for
// forensics, never re-read) and the .prev generation serves the resume.
func TestCkptStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := newCkptStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var corrupted []string
	s.noteCorrupt = func(key string) { corrupted = append(corrupted, key) }

	older := &core.Checkpoint{Next: 100}
	newer := &core.Checkpoint{Next: 200}
	if err := s.writeDisk("k1", older); err != nil {
		t.Fatal(err)
	}
	if err := s.writeDisk("k1", newer); err != nil { // rotates older to .prev
		t.Fatal(err)
	}
	p := s.path("k1")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got := s.load("k1")
	if got == nil || got.Next != 100 {
		t.Fatalf("load after corruption: %+v, want the .prev generation (Next=100)", got)
	}
	if len(corrupted) != 1 || corrupted[0] != "k1" {
		t.Fatalf("noteCorrupt calls %v", corrupted)
	}
	if _, err := os.Stat(p + ".corrupt"); err != nil {
		t.Fatalf("damaged file not quarantined: %v", err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("damaged file still at the live path: %v", err)
	}
}

// TestRestartWithDatasetGone pins the unrecoverable path: a journaled
// job whose .spb mirror vanished is replayed as Failed — visible, with
// the reason — instead of hanging or crashing recovery.
func TestRestartWithDatasetGone(t *testing.T) {
	dirs := newDurableDirs(t)
	spec := recoverySpec(t, 4)

	m1, err := NewManager(dirs.config(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	if err := os.RemoveAll(dirs.ds); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(dirs.config(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	fin := waitRecoveredTerminal(t, m2, st.ID)
	if fin.State != Failed || !strings.Contains(fin.Error, "unrecoverable") {
		t.Fatalf("replayed job %s (%q), want unrecoverable failure", fin.State, fin.Error)
	}
}

// TestChaosMatrix drives the fault plane end to end over three seeds:
// inject checkpoint corruption, journal append failures and dataset
// mirror damage while jobs run, "crash", restart clean, and require
// that every result the system produces afterwards is bitwise identical
// to the uninterrupted reference.  Failed-but-visible jobs are allowed
// (that is the degraded-durability contract); wrong counts are not.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	want, wantErr := core.MaxT(recoverySpec(t, 21).X, recoverySpec(t, 21).Labels, recoverySpec(t, 21).Opt)
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	for seed := 1; seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dirs := newDurableDirs(t)
			spec := recoverySpec(t, 21)
			faultSpec := fmt.Sprintf(
				"seed=%d;ckpt.write:corrupt:n=%d;journal.append:error:n=%d;dataset.write:corrupt:n=%d",
				seed, seed, seed+3, 4-seed)
			if _, err := faultinject.Setup(faultSpec); err != nil {
				t.Fatal(err)
			}
			defer faultinject.Disable()

			m1, err := NewManager(dirs.config(1))
			if err != nil {
				t.Fatal(err)
			}
			st, err := m1.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			// Let it make some progress under fire, then crash.
			deadline := time.Now().Add(30 * time.Second)
			for {
				got, err := m1.Get(st.ID)
				if err != nil {
					t.Fatal(err)
				}
				if got.State.Terminal() || got.Done > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("job made no progress")
				}
				time.Sleep(time.Millisecond)
			}
			m1.Close()
			faultinject.Disable()

			m2, err := NewManager(dirs.config(1))
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			// Whatever survived the storm must finish correct; a job the
			// faults failed outright (or kept out of the journal) is
			// resubmitted below and must compute — or cache-hit — to the
			// exact same counts.
			deadline = time.Now().Add(30 * time.Second)
			for m2.Recovering() {
				if time.Now().After(deadline) {
					t.Fatal("recovery did not finish")
				}
				time.Sleep(2 * time.Millisecond)
			}
			if _, err := m2.Get(st.ID); err == nil {
				waitTerminal(t, m2, st.ID)
			}
			st2, err := m2.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			fin := waitTerminal(t, m2, st2.ID)
			if fin.State != Done {
				t.Fatalf("post-chaos submission %s (%s)", fin.State, fin.Error)
			}
			res, _, err := m2.Result(st2.ID)
			if err != nil {
				t.Fatal(err)
			}
			sameFloats(t, "AdjP", res.AdjP, want.AdjP)
			sameFloats(t, "RawP", res.RawP, want.RawP)
			sameFloats(t, "Stat", res.Stat, want.Stat)
		})
	}
}
