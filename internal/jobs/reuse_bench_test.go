package jobs

import (
	"testing"

	"sprint/internal/core"
	"sprint/internal/matrix"
)

// reuseWorkload is a fixed mid-size analysis for the worker-reuse
// measurements.
func reuseWorkload() (matrix.Matrix, []int, core.Options) {
	labels := make([]int, 16)
	for i := 8; i < 16; i++ {
		labels[i] = 1
	}
	m := sweepMatrix(128, 16, 0x5eed)
	return m, labels, core.Options{B: 512, Seed: 7}
}

// TestRunScratchReuseReducesAllocs asserts the point of per-worker scratch
// ownership: running consecutive jobs with one reused core.RunScratch must
// allocate strictly less than running each with fresh scratch, and the
// reused path's steady state must stay under a fixed budget that excludes
// any per-window or per-batch buffer churn (only per-job setup — prep
// clone, kernel moments, generator, result — remains).
func TestRunScratchReuseReducesAllocs(t *testing.T) {
	m, labels, opt := reuseWorkload()
	run := func(rs *core.RunScratch) {
		if _, err := core.RunMatrix(m, labels, opt, core.RunControl{NProcs: 2, Every: 64, Scratch: rs}); err != nil {
			t.Fatal(err)
		}
	}
	shared := &core.RunScratch{}
	run(shared) // warm the reusable buffers
	reused := testing.AllocsPerRun(10, func() { run(shared) })
	fresh := testing.AllocsPerRun(10, func() { run(&core.RunScratch{}) })
	if reused >= fresh {
		t.Errorf("reused scratch allocates %.0f objects per job, fresh %.0f — reuse saves nothing", reused, fresh)
	}
	// The absolute budget guards against reintroducing per-window
	// allocations: 8 windows × anything would blow well past this.
	if reused > 120 {
		t.Errorf("reused worker path allocates %.0f objects per job, want <= 120 (per-job setup only)", reused)
	}
}

// BenchmarkWorkerJobReuse measures the steady-state jobs worker path —
// repeated identical-shape analyses on one worker-owned scratch — and
// reports allocs/op for the CI bench smoke to track.
func BenchmarkWorkerJobReuse(b *testing.B) {
	m, labels, opt := reuseWorkload()
	shared := &core.RunScratch{}
	ctl := core.RunControl{NProcs: 2, Every: 128, Scratch: shared}
	if _, err := core.RunMatrix(m, labels, opt, ctl); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunMatrix(m, labels, opt, ctl); err != nil {
			b.Fatal(err)
		}
	}
}
