package jobs

import (
	"strings"
	"testing"

	"sprint/internal/core"
)

// TestStaleCheckpointRestartsFresh: a checkpoint that no longer validates
// (e.g. one written by an older engine version) must be discarded and the
// job recomputed from scratch — not left to fail every future submission
// of its content key.
func TestStaleCheckpointRestartsFresh(t *testing.T) {
	spec := testSpec(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	key, err := spec.contentKey()
	if err != nil {
		t.Fatal(err)
	}
	// Plant a checkpoint whose fingerprint cannot match any analysis.
	m.mu.Lock()
	m.ckpts.put(key, &core.Checkpoint{
		Fingerprint: 0xbad,
		TotalB:      spec.Opt.B,
		Next:        100,
		Done:        100,
		Raw:         make([]int64, len(spec.X)),
		Adj:         make([]int64, len(spec.X)),
	})
	m.mu.Unlock()

	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != Done {
		t.Fatalf("job with stale checkpoint finished %+v, want done", fin)
	}
	if fin.ResumedFrom != 0 {
		t.Errorf("stale checkpoint was resumed from %d, want fresh start", fin.ResumedFrom)
	}
	res, _, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaxT(testSpec(t).X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
}

// flatSpec rebuilds testSpec's dataset as a flat column-major buffer —
// the R-layout payload path.
func flatSpec(t *testing.T) Spec {
	t.Helper()
	spec := testSpec(t)
	genes, samples := len(spec.X), len(spec.X[0])
	flat := make([]float64, genes*samples)
	for j := 0; j < samples; j++ {
		for i := 0; i < genes; i++ {
			flat[j*genes+i] = spec.X[i][j]
		}
	}
	spec.X = nil
	spec.XFlat, spec.Genes, spec.Samples = flat, genes, samples
	return spec
}

// TestFlatSubmissionSharesKeyAndCache: the same dataset submitted row per
// gene and as a flat column-major buffer must hash to the same content
// key, so the second submission is a cache hit, and both produce the
// bit-identical result.
func TestFlatSubmissionSharesKeyAndCache(t *testing.T) {
	rows := testSpec(t)
	flat := flatSpec(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st1, err := m.Submit(rows)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st1.ID)
	res1, _, err := m.Result(st1.ID)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := m.Submit(flat)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Key != st1.Key {
		t.Fatalf("flat submission key %s != rows key %s", st2.Key, st1.Key)
	}
	if st2.State != Done || !st2.CacheHit {
		t.Fatalf("flat resubmission not served from cache: %+v", st2)
	}
	res2, _, err := m.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res2.AdjP, res1.AdjP)
	sameFloats(t, "Stat", res2.Stat, res1.Stat)
}

// TestFlatSubmissionComputesCorrectly: a cold flat submission (no cache)
// must equal MaxT on the row form.
func TestFlatSubmissionComputesCorrectly(t *testing.T) {
	rows := testSpec(t)
	flat := flatSpec(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st, err := m.Submit(flat)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, m, st.ID); fin.State != Done {
		t.Fatalf("flat job finished %+v", fin)
	}
	res, _, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaxT(rows.X, rows.Labels, rows.Opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
	sameFloats(t, "RawP", res.RawP, want.RawP)
}

// TestFlatSubmissionDoesNotMutateBuffer: Submit must never modify the
// caller's XFlat slice — a rejected submission (queue full, bad options)
// must be retryable verbatim, so the in-place transpose has to happen on
// a private copy.
func TestFlatSubmissionDoesNotMutateBuffer(t *testing.T) {
	spec := flatSpec(t)
	orig := append([]float64(nil), spec.XFlat...)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A failing submission (bad options) must leave the buffer intact.
	bad := spec
	bad.Opt.Side = "sideways"
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("bad options accepted")
	}
	for i := range orig {
		if spec.XFlat[i] != orig[i] {
			t.Fatalf("failed Submit mutated XFlat at %d", i)
		}
	}
	// A successful one too: the transpose must work on a copy.
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	for i := range orig {
		if spec.XFlat[i] != orig[i] {
			t.Fatalf("successful Submit mutated XFlat at %d", i)
		}
	}
}

// TestFlatSubmissionValidation rejects malformed flat payloads.
func TestFlatSubmissionValidation(t *testing.T) {
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	check := func(name string, spec Spec, wantSub string) {
		t.Helper()
		if _, err := m.Submit(spec); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %v, want substring %q", name, err, wantSub)
		}
	}
	good := flatSpec(t)

	both := good
	both.X = [][]float64{{1, 2}}
	check("both payloads", both, "both X and XFlat")

	short := good
	short.XFlat = short.XFlat[:len(short.XFlat)-1]
	check("short buffer", short, "values for")

	noShape := good
	noShape.Genes, noShape.Samples = 0, 0
	check("missing shape", noShape, "positive Genes and Samples")
}
