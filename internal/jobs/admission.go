package jobs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the admission-control plane of the job server: who gets
// into the queue, in what order work leaves it, and what the server says
// when it refuses.  Three mechanisms compose:
//
//   - Per-tenant token buckets bound each tenant's sustained submission
//     rate (and burst) independently, so one chatty client cannot starve
//     the rest.  Tenancy is just a string key — the X-Tenant header on
//     the wire — and unknown tenants share a configurable default limit.
//   - A two-class weighted-fair queue separates interactive jobs (small
//     permutation counts, a human waiting) from bulk sweeps.  When both
//     classes are backlogged, interactive jobs get InteractiveWeight pops
//     for every bulk pop; an empty class yields its slots entirely, so
//     neither class can starve the other.
//   - Load shedding turns refusal into guidance: every rejection carries
//     a Retry-After derived from the observed queue drain rate — the
//     truthful "come back when a slot will exist" number — and every
//     shed or throttle decision is itself counted.
//
// All admission state lives beside the queue, guarded by its own locks,
// never by Manager.mu: a scrape or a throttle decision must not contend
// with the job table.

// JobClass partitions queued work for the weighted-fair queue.
type JobClass int

const (
	// ClassInteractive is the low-latency class: small-B jobs a caller is
	// plausibly blocked on.
	ClassInteractive JobClass = iota
	// ClassBulk is the throughput class: large sweeps and complete
	// enumerations.
	ClassBulk
	numClasses
)

func (c JobClass) String() string {
	if c == ClassInteractive {
		return "interactive"
	}
	return "bulk"
}

// classFor assigns a submission to a queue class: an explicit request
// wins, otherwise sampled jobs at or under the interactive B bound are
// interactive and everything else — including complete enumerations,
// whose permutation count is unknown until planned — is bulk.
func classFor(explicit string, canonB, interactiveMaxB int64) (JobClass, error) {
	switch explicit {
	case "":
	case "interactive":
		return ClassInteractive, nil
	case "bulk":
		return ClassBulk, nil
	default:
		return ClassBulk, fmt.Errorf("jobs: unknown job class %q (want interactive or bulk)", explicit)
	}
	if canonB > 0 && canonB <= interactiveMaxB {
		return ClassInteractive, nil
	}
	return ClassBulk, nil
}

// ErrRateLimited rejects a submission that exceeded its tenant's token
// bucket.
var ErrRateLimited = fmt.Errorf("jobs: tenant rate limit exceeded")

// OverloadError is the typed rejection of the admission plane: it wraps
// the matching sentinel (ErrQueueFull or ErrRateLimited), names the
// decision for metrics and logs, and carries the Retry-After guidance
// the HTTP layer forwards to the client.
type OverloadError struct {
	// Reason is the decision: "queue_full", "queue_wait" (predicted wait
	// exceeded the bound) or "rate_limited".
	Reason string
	// RetryAfter is when retrying is worthwhile: the token-refill time
	// for throttles, the queue-drain estimate for sheds.
	RetryAfter time.Duration
	sentinel   error
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (%s, retry after %s)", e.sentinel, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap lets errors.Is(err, ErrQueueFull / ErrRateLimited) keep working
// on typed rejections.
func (e *OverloadError) Unwrap() error { return e.sentinel }

// ---- Token buckets ------------------------------------------------------

// TenantLimit is one tenant's token bucket shape: Rate tokens (jobs) per
// second refill, Burst tokens capacity.  A zero Rate means unlimited.
type TenantLimit struct {
	Rate  float64
	Burst float64
}

func (l TenantLimit) limited() bool { return l.Rate > 0 }

// TenantLimits configures the tenant limiter: the default bucket every
// unknown tenant gets, plus per-tenant overrides.
type TenantLimits struct {
	Default   TenantLimit
	Overrides map[string]TenantLimit
}

// ParseTenantLimits parses the -tenant-limits flag syntax: a comma-
// separated list of "rate=R" and "burst=N" (the default bucket) and
// "tenant=R:N" per-tenant overrides.  "" and "off" mean unlimited.
//
//	rate=5,burst=10,acme=50:100,probe=0.5:1
func ParseTenantLimits(s string) (TenantLimits, error) {
	var out TenantLimits
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return out, fmt.Errorf("jobs: tenant limit %q is not key=value", part)
		}
		switch k {
		case "rate":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r < 0 {
				return out, fmt.Errorf("jobs: tenant limit rate %q", v)
			}
			out.Default.Rate = r
		case "burst":
			b, err := strconv.ParseFloat(v, 64)
			if err != nil || b < 0 {
				return out, fmt.Errorf("jobs: tenant limit burst %q", v)
			}
			out.Default.Burst = b
		default:
			rs, bs, ok := strings.Cut(v, ":")
			if !ok {
				return out, fmt.Errorf("jobs: tenant override %q is not tenant=rate:burst", part)
			}
			r, err := strconv.ParseFloat(rs, 64)
			if err != nil || r < 0 {
				return out, fmt.Errorf("jobs: tenant %q rate %q", k, rs)
			}
			b, err := strconv.ParseFloat(bs, 64)
			if err != nil || b < 0 {
				return out, fmt.Errorf("jobs: tenant %q burst %q", k, bs)
			}
			if out.Overrides == nil {
				out.Overrides = make(map[string]TenantLimit)
			}
			out.Overrides[k] = TenantLimit{Rate: r, Burst: b}
		}
	}
	if out.Default.Rate > 0 && out.Default.Burst == 0 {
		out.Default.Burst = out.Default.Rate // 1s of burst by default
	}
	for k, l := range out.Overrides {
		if l.Rate > 0 && l.Burst == 0 {
			l.Burst = l.Rate
			out.Overrides[k] = l
		}
	}
	return out, nil
}

// limitFor resolves a tenant's bucket shape.
func (t TenantLimits) limitFor(tenant string) TenantLimit {
	if l, ok := t.Overrides[tenant]; ok {
		return l
	}
	return t.Default
}

// tokenBucket is a standard refill-on-read token bucket.
type tokenBucket struct {
	limit  TenantLimit
	tokens float64
	last   time.Time
}

// take removes one token if available; otherwise it reports how long
// until one refills.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if !b.limit.limited() {
		return true, 0
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.limit.Rate
	} else {
		b.tokens = b.limit.Burst // a fresh bucket starts full
	}
	if b.tokens > b.limit.Burst {
		b.tokens = b.limit.Burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.limit.Rate * float64(time.Second))
}

// maxTenants bounds the limiter's state table; beyond it the longest-
// idle tenants are dropped (their buckets restart full — a bounded-
// memory tradeoff, not a correctness one).
const maxTenants = 4096

// tenantState is one tenant's admission record.
type tenantState struct {
	bucket   tokenBucket
	lastSeen time.Time
	// admitted / throttled counts live here (not in the registry hot
	// path) so the limiter touches at most one map entry per decision.
	admitted, throttled int64
}

// tenantLimiter owns the per-tenant buckets.
type tenantLimiter struct {
	mu     sync.Mutex
	limits TenantLimits
	states map[string]*tenantState
}

func newTenantLimiter(limits TenantLimits) *tenantLimiter {
	return &tenantLimiter{limits: limits, states: make(map[string]*tenantState)}
}

// take charges one submission to the tenant's bucket.
func (t *tenantLimiter) take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, found := t.states[tenant]
	if !found {
		st = &tenantState{bucket: tokenBucket{limit: t.limits.limitFor(tenant)}}
		if len(t.states) >= maxTenants {
			t.pruneLocked()
		}
		t.states[tenant] = st
	}
	st.lastSeen = now
	ok, retryAfter = st.bucket.take(now)
	if ok {
		st.admitted++
	} else {
		st.throttled++
	}
	return ok, retryAfter
}

// pruneLocked drops the idlest quarter of the state table.
func (t *tenantLimiter) pruneLocked() {
	type idle struct {
		name string
		seen time.Time
	}
	all := make([]idle, 0, len(t.states))
	for name, st := range t.states {
		all = append(all, idle{name, st.lastSeen})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seen.Before(all[j].seen) })
	for _, v := range all[:len(all)/4+1] {
		delete(t.states, v.name)
	}
}

// TenantStat is one tenant's admission counters, for /v1/stats.
type TenantStat struct {
	Tenant    string `json:"tenant"`
	Admitted  int64  `json:"admitted"`
	Throttled int64  `json:"throttled"`
}

// snapshot lists per-tenant counters, busiest first, capped at limit.
func (t *tenantLimiter) snapshot(limit int) []TenantStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TenantStat, 0, len(t.states))
	for name, st := range t.states {
		out = append(out, TenantStat{Tenant: name, Admitted: st.admitted, Throttled: st.throttled})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Admitted != out[j].Admitted {
			return out[i].Admitted > out[j].Admitted
		}
		return out[i].Tenant < out[j].Tenant
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (t *tenantLimiter) active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.states)
}

// ---- Weighted-fair queue ------------------------------------------------

// fairQueue is the two-class bounded queue the workers pop from.  Under
// the "fair" policy, interactive pops outnumber bulk pops weight:1 while
// both classes are backlogged; an empty class cedes its slots, so a
// lone class drains at full speed and neither class starves.  Under
// "fifo" the classes still exist (for metrics) but pops follow global
// arrival order, reproducing the old single-FIFO behaviour exactly.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	q    [numClasses][]*job
	head [numClasses]int

	size, capTotal int
	weight, credit int
	fifo           bool
	closed         bool
}

func newFairQueue(capTotal, weight int, fifo bool) *fairQueue {
	q := &fairQueue{capTotal: capTotal, weight: weight, credit: weight, fifo: fifo}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// full reports whether the queue is at capacity.
func (q *fairQueue) full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size >= q.capTotal
}

// tryPush appends j to its class, failing when the queue is full or
// closed.  j.class and j.enqueueSeq must be set by the caller.
func (q *fairQueue) tryPush(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.capTotal {
		return false
	}
	q.q[j.class] = append(q.q[j.class], j)
	q.size++
	q.cond.Signal()
	return true
}

// pop blocks until a job is available or the queue is closed AND empty
// (a closed queue drains; the manager marks drained jobs cancelled).
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	c := q.pickLocked()
	j := q.q[c][q.head[c]]
	q.q[c][q.head[c]] = nil // release the reference for GC
	q.head[c]++
	if q.head[c] == len(q.q[c]) {
		q.q[c] = q.q[c][:0]
		q.head[c] = 0
	}
	q.size--
	return j, true
}

// pickLocked chooses the class the next pop serves.
func (q *fairQueue) pickLocked() JobClass {
	iEmpty := q.head[ClassInteractive] == len(q.q[ClassInteractive])
	bEmpty := q.head[ClassBulk] == len(q.q[ClassBulk])
	switch {
	case iEmpty:
		return ClassBulk
	case bEmpty:
		return ClassInteractive
	case q.fifo:
		// Global arrival order: serve the older head.
		if q.q[ClassInteractive][q.head[ClassInteractive]].enqueueSeq <
			q.q[ClassBulk][q.head[ClassBulk]].enqueueSeq {
			return ClassInteractive
		}
		return ClassBulk
	case q.credit > 0:
		q.credit--
		return ClassInteractive
	default:
		q.credit = q.weight
		return ClassBulk
	}
}

// close wakes every waiter; pop drains what remains and then reports
// closed.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// lens returns the per-class backlogs.
func (q *fairQueue) lens() (interactive, bulk int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.q[ClassInteractive]) - q.head[ClassInteractive],
		len(q.q[ClassBulk]) - q.head[ClassBulk]
}

func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// ---- Drain meter --------------------------------------------------------

// drainWindow is how far back the drain meter looks when estimating the
// service rate.
const drainWindow = 30 * time.Second

// drainMeter estimates the queue's drain rate from recent job
// completions: the evidence behind every Retry-After the server emits.
type drainMeter struct {
	mu     sync.Mutex
	stamps [256]time.Time
	n      int // filled entries, <= len(stamps)
	next   int // ring write position
}

// observe records one completed job.
func (d *drainMeter) observe(now time.Time) {
	d.mu.Lock()
	d.stamps[d.next] = now
	d.next = (d.next + 1) % len(d.stamps)
	if d.n < len(d.stamps) {
		d.n++
	}
	d.mu.Unlock()
}

// ratePerSec estimates jobs/second over the recent window; 0 means "no
// evidence yet".
func (d *drainMeter) ratePerSec(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	cutoff := now.Add(-drainWindow)
	count := 0
	var earliest time.Time
	for i := 0; i < d.n; i++ {
		t := d.stamps[i]
		if t.After(cutoff) {
			count++
			if earliest.IsZero() || t.Before(earliest) {
				earliest = t
			}
		}
	}
	if count == 0 {
		return 0
	}
	span := now.Sub(earliest)
	if span < 100*time.Millisecond {
		span = 100 * time.Millisecond
	}
	return float64(count) / span.Seconds()
}

// retryAfter converts a backlog into honest client guidance: the time
// the observed drain rate needs to clear depth jobs, clamped to
// [1s, 120s].  With no observed completions yet it answers a flat 5s.
func (d *drainMeter) retryAfter(depth int, now time.Time) time.Duration {
	rate := d.ratePerSec(now)
	if rate <= 0 {
		return 5 * time.Second
	}
	est := time.Duration(float64(depth+1) / rate * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > 120*time.Second {
		est = 120 * time.Second
	}
	return est
}
