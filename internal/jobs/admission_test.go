package jobs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sprint/internal/core"
)

// optB builds sampled-run options with a distinct seed per B so specs
// with different B never collide in the result cache.
func optB(b int64) core.Options {
	return core.Options{B: b, FixedSeedSampling: "y", Seed: uint64(b)}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		explicit string
		b, maxB  int64
		want     JobClass
		wantErr  bool
	}{
		{"interactive", 1 << 40, 100, ClassInteractive, false},
		{"bulk", 1, 100, ClassBulk, false},
		{"", 100, 100, ClassInteractive, false},
		{"", 101, 100, ClassBulk, false},
		{"", 0, 100, ClassBulk, false}, // complete enumeration: size unknown
		{"batch", 1, 100, ClassBulk, true},
	}
	for _, c := range cases {
		got, err := classFor(c.explicit, c.b, c.maxB)
		if (err != nil) != c.wantErr || (err == nil && got != c.want) {
			t.Errorf("classFor(%q, %d, %d) = %v, %v; want %v (err %v)",
				c.explicit, c.b, c.maxB, got, err, c.want, c.wantErr)
		}
	}
}

func TestParseTenantLimits(t *testing.T) {
	l, err := ParseTenantLimits("rate=5,burst=10,acme=50:100,probe=0.5:1")
	if err != nil {
		t.Fatal(err)
	}
	if l.Default != (TenantLimit{Rate: 5, Burst: 10}) {
		t.Fatalf("default %+v", l.Default)
	}
	if l.Overrides["acme"] != (TenantLimit{Rate: 50, Burst: 100}) {
		t.Fatalf("acme %+v", l.Overrides["acme"])
	}
	if l.Overrides["probe"] != (TenantLimit{Rate: 0.5, Burst: 1}) {
		t.Fatalf("probe %+v", l.Overrides["probe"])
	}
	// burst defaults to rate when omitted
	l, err = ParseTenantLimits("rate=3")
	if err != nil || l.Default.Burst != 3 {
		t.Fatalf("rate-only default %+v (%v)", l.Default, err)
	}
	// off and empty mean unlimited
	for _, s := range []string{"", "off", "  "} {
		l, err = ParseTenantLimits(s)
		if err != nil || l.Default.limited() {
			t.Fatalf("%q parsed to %+v (%v)", s, l, err)
		}
	}
	for _, bad := range []string{"rate", "rate=x", "acme=5", "acme=a:b", "rate=-1"} {
		if _, err := ParseTenantLimits(bad); err == nil {
			t.Errorf("ParseTenantLimits(%q) accepted", bad)
		}
	}
}

// TestTokenBucketProperties checks the limiter contract: burst honoured,
// sustained rate honoured, honest retry-after.
func TestTokenBucketProperties(t *testing.T) {
	now := time.Unix(1000, 0)
	b := tokenBucket{limit: TenantLimit{Rate: 2, Burst: 4}}

	// A fresh bucket admits exactly the burst.
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.take(now); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("burst admitted %d, want 4", admitted)
	}
	// Empty bucket: retry-after is the refill time of one token (0.5s at
	// rate 2).
	ok, retry := b.take(now)
	if ok || retry <= 0 || retry > time.Second {
		t.Fatalf("empty bucket take = %v, %v", ok, retry)
	}
	// After 1 second, exactly 2 tokens refilled.
	now = now.Add(time.Second)
	admitted = 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.take(now); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("refill admitted %d, want 2", admitted)
	}
	// Idle time never accumulates beyond the burst.
	now = now.Add(time.Hour)
	admitted = 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.take(now); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("post-idle admitted %d, want burst 4", admitted)
	}
	// An unlimited bucket never refuses.
	u := tokenBucket{}
	for i := 0; i < 1000; i++ {
		if ok, _ := u.take(now); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestTenantLimiterIsolation(t *testing.T) {
	lim := newTenantLimiter(TenantLimits{
		Default:   TenantLimit{Rate: 1, Burst: 1},
		Overrides: map[string]TenantLimit{"vip": {Rate: 1000, Burst: 1000}},
	})
	now := time.Unix(5000, 0)
	if ok, _ := lim.take("noisy", now); !ok {
		t.Fatal("first take refused")
	}
	if ok, _ := lim.take("noisy", now); ok {
		t.Fatal("noisy tenant exceeded its burst unthrottled")
	}
	// Another tenant is unaffected by noisy's empty bucket.
	if ok, _ := lim.take("quiet", now); !ok {
		t.Fatal("quiet tenant throttled by noisy's bucket")
	}
	// The override applies.
	for i := 0; i < 500; i++ {
		if ok, _ := lim.take("vip", now); !ok {
			t.Fatal("vip throttled under its override")
		}
	}
	stats := lim.snapshot(0)
	byName := map[string]TenantStat{}
	for _, s := range stats {
		byName[s.Tenant] = s
	}
	if s := byName["noisy"]; s.Admitted != 1 || s.Throttled != 1 {
		t.Fatalf("noisy stats %+v", s)
	}
	if s := byName["vip"]; s.Admitted != 500 {
		t.Fatalf("vip stats %+v", s)
	}
	if lim.active() != 3 {
		t.Fatalf("active = %d, want 3", lim.active())
	}
}

func qjob(class JobClass, seq int64) *job {
	return &job{class: class, enqueueSeq: seq}
}

// TestFairQueueWeightedInterleave pins the pop order when both classes
// are backlogged: weight interactive pops per bulk pop.
func TestFairQueueWeightedInterleave(t *testing.T) {
	q := newFairQueue(64, 2, false)
	seq := int64(0)
	for i := 0; i < 9; i++ {
		seq++
		if !q.tryPush(qjob(ClassBulk, seq)) {
			t.Fatal("push failed")
		}
	}
	for i := 0; i < 6; i++ {
		seq++
		if !q.tryPush(qjob(ClassInteractive, seq)) {
			t.Fatal("push failed")
		}
	}
	var order []JobClass
	for q.len() > 0 {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop reported closed")
		}
		order = append(order, j.class)
	}
	// credit starts at weight=2: I I B I I B I I B B B B B B B
	want := []JobClass{
		ClassInteractive, ClassInteractive, ClassBulk,
		ClassInteractive, ClassInteractive, ClassBulk,
		ClassInteractive, ClassInteractive, ClassBulk,
		ClassBulk, ClassBulk, ClassBulk, ClassBulk, ClassBulk, ClassBulk,
	}
	if len(order) != len(want) {
		t.Fatalf("popped %d jobs, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop %d = %v, order %v, want %v", i, order[i], order, want)
		}
	}
}

// TestFairQueueNoStarvation is the fairness property: with both classes
// continuously backlogged, any window of weight+1 consecutive pops serves
// at least one job of each class.
func TestFairQueueNoStarvation(t *testing.T) {
	const weight = 4
	q := newFairQueue(512, weight, false)
	seq := int64(0)
	for i := 0; i < 200; i++ {
		seq++
		q.tryPush(qjob(ClassBulk, seq))
		seq++
		q.tryPush(qjob(ClassInteractive, seq))
	}
	var order []JobClass
	for q.len() > 0 {
		j, _ := q.pop()
		order = append(order, j.class)
	}
	// Both classes stay backlogged for the first 2*200 - ~... pops; check
	// windows while both are still present.
	remaining := map[JobClass]int{ClassInteractive: 200, ClassBulk: 200}
	for i := 0; i+weight+1 <= len(order); i++ {
		if remaining[ClassInteractive] == 0 || remaining[ClassBulk] == 0 {
			break
		}
		window := order[i : i+weight+1]
		seen := map[JobClass]bool{}
		for _, c := range window {
			seen[c] = true
		}
		if !seen[ClassInteractive] || !seen[ClassBulk] {
			t.Fatalf("window at %d = %v starves a class", i, window)
		}
		remaining[order[i]]--
	}
}

// TestFairQueueFIFOPolicy: under fifo the pops reproduce global arrival
// order exactly, classes notwithstanding.
func TestFairQueueFIFOPolicy(t *testing.T) {
	q := newFairQueue(64, 4, true)
	classes := []JobClass{ClassBulk, ClassBulk, ClassInteractive, ClassBulk,
		ClassInteractive, ClassInteractive, ClassBulk}
	for i, c := range classes {
		if !q.tryPush(qjob(c, int64(i+1))) {
			t.Fatal("push failed")
		}
	}
	for i := 1; q.len() > 0; i++ {
		j, _ := q.pop()
		if j.enqueueSeq != int64(i) {
			t.Fatalf("fifo pop %d returned seq %d", i, j.enqueueSeq)
		}
	}
}

func TestFairQueueCapacityAndClose(t *testing.T) {
	q := newFairQueue(2, 4, false)
	if !q.tryPush(qjob(ClassBulk, 1)) || !q.tryPush(qjob(ClassInteractive, 2)) {
		t.Fatal("pushes under capacity failed")
	}
	if !q.full() || q.tryPush(qjob(ClassBulk, 3)) {
		t.Fatal("over-capacity push admitted")
	}
	q.close()
	// A closed queue drains what it holds, then reports closed.
	if _, ok := q.pop(); !ok {
		t.Fatal("drain pop 1 failed")
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("drain pop 2 failed")
	}
	if j, ok := q.pop(); ok || j != nil {
		t.Fatal("pop on drained closed queue did not report closed")
	}
	if q.tryPush(qjob(ClassBulk, 4)) {
		t.Fatal("push accepted after close")
	}
}

// TestFairQueueConcurrent drives pushers against poppers under -race and
// requires every accepted job to be popped exactly once.
func TestFairQueueConcurrent(t *testing.T) {
	q := newFairQueue(1024, 4, false)
	const pushers, per = 4, 500

	var pushed sync.Map
	var wgPush sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wgPush.Add(1)
		go func(p int) {
			defer wgPush.Done()
			for i := 0; i < per; i++ {
				seq := int64(p*per + i + 1)
				class := ClassBulk
				if i%3 == 0 {
					class = ClassInteractive
				}
				j := qjob(class, seq)
				for !q.tryPush(j) {
					time.Sleep(time.Microsecond)
				}
				pushed.Store(seq, true)
			}
		}(p)
	}

	var mu sync.Mutex
	popped := make(map[int64]int)
	var wgPop sync.WaitGroup
	for w := 0; w < 3; w++ {
		wgPop.Add(1)
		go func() {
			defer wgPop.Done()
			for {
				j, ok := q.pop()
				if !ok {
					return
				}
				mu.Lock()
				popped[j.enqueueSeq]++
				mu.Unlock()
			}
		}()
	}
	wgPush.Wait()
	q.close()
	wgPop.Wait()

	count := 0
	pushed.Range(func(k, _ any) bool {
		count++
		if popped[k.(int64)] != 1 {
			t.Fatalf("job %d popped %d times", k.(int64), popped[k.(int64)])
		}
		return true
	})
	if count != pushers*per {
		t.Fatalf("pushed %d, want %d", count, pushers*per)
	}
}

func TestDrainMeter(t *testing.T) {
	var d drainMeter
	now := time.Unix(9000, 0)
	// No evidence: flat 5s guidance.
	if got := d.retryAfter(10, now); got != 5*time.Second {
		t.Fatalf("no-data retryAfter = %v", got)
	}
	// 10 completions over 10 seconds: ~1 job/s.
	for i := 0; i < 10; i++ {
		d.observe(now.Add(time.Duration(i) * time.Second))
	}
	now = now.Add(10 * time.Second)
	rate := d.ratePerSec(now)
	if rate < 0.5 || rate > 2 {
		t.Fatalf("rate = %v, want ~1", rate)
	}
	// Depth 9 at ~1/s: retry in ~10s, clamped to [1s, 120s].
	got := d.retryAfter(9, now)
	if got < 5*time.Second || got > 30*time.Second {
		t.Fatalf("retryAfter = %v, want ~10s", got)
	}
	// Stale observations age out of the window.
	now = now.Add(2 * drainWindow)
	if rate := d.ratePerSec(now); rate != 0 {
		t.Fatalf("stale rate = %v, want 0", rate)
	}
}

// TestManagerRateLimit submits through a manager with a 1-token bucket
// and requires the typed 429 shape.
func TestManagerRateLimit(t *testing.T) {
	clock := time.Unix(77000, 0)
	m, err := NewManager(Config{
		Workers: 1, QueueDepth: 4,
		TenantLimits: TenantLimits{Default: TenantLimit{Rate: 1, Burst: 1}},
		Clock:        func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	spec := func(b int64) Spec {
		return Spec{
			X:      [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}},
			Labels: []int{0, 0, 1, 1},
			Opt:    optB(b),
			Tenant: "acme",
		}
	}
	if _, err := m.Submit(spec(100)); err != nil {
		t.Fatalf("first submission: %v", err)
	}
	_, err = m.Submit(spec(200))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submission err = %v, want ErrRateLimited", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "rate_limited" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v", oe)
	}
	st := m.StatsSnapshot()
	if st.ShedRateLimited != 1 {
		t.Fatalf("shed_rate_limited = %d, want 1", st.ShedRateLimited)
	}
	found := false
	for _, ts := range st.Tenants {
		if ts.Tenant == "acme" {
			found = true
			if ts.Admitted != 1 || ts.Throttled != 1 {
				t.Fatalf("tenant stats %+v", ts)
			}
		}
	}
	if !found {
		t.Fatal("acme missing from tenant stats")
	}

	// The bucket refills with the clock: one second later the tenant is
	// admitted again, and identical submissions hit the cache untaxed.
	clock = clock.Add(time.Second)
	if _, err := m.Submit(spec(300)); err != nil {
		t.Fatalf("post-refill submission: %v", err)
	}
}

// TestQueueFullCarriesRetryAfter: a full queue sheds with the typed error
// and drain-rate-derived guidance.
func TestQueueFullCarriesRetryAfter(t *testing.T) {
	block := make(chan struct{})
	defer func() {
		select {
		case <-block:
		default:
			close(block)
		}
	}()
	m, err := NewManager(Config{
		Workers: 1, QueueDepth: 1,
		OnCheckpoint: func(id string, done, total int64) {
			<-block
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	spec := func(b int64) Spec {
		return Spec{
			X:      [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}},
			Labels: []int{0, 0, 1, 1},
			Opt:    optB(b),
			Every:  10,
		}
	}
	// First job occupies the worker (blocked in its checkpoint), second
	// fills the queue; the third must shed.
	if _, err := m.Submit(spec(1000)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := m.StatsSnapshot(); st.Running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(spec(2000)); err != nil {
		t.Fatal(err)
	}
	_, err = m.Submit(spec(3000))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue_full" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v", oe)
	}
	if st := m.StatsSnapshot(); st.ShedQueueFull != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", st.ShedQueueFull)
	}
	close(block)
}
