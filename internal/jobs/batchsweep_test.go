package jobs

import (
	"math"
	"testing"

	"sprint/internal/core"
	"sprint/internal/matrix"
)

// sweepMatrix builds an NA-bearing, quantized (tie-heavy) matrix.
func sweepMatrix(rows, cols int, seed uint64) matrix.Matrix {
	m := matrix.New(rows, cols)
	s := seed
	next := func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	}
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float64(next()%32)/4 - 4
		}
		if i%3 == 2 {
			row[int(next()%uint64(cols))] = math.NaN()
		}
	}
	return m
}

// TestBatchSizeInvariance is the batching refactor's end-to-end property
// sweep: for every test × side × nonpara setting on random NA-bearing,
// unbalanced, tied designs, runs at every BatchSize must produce bitwise
// equal statistics and p-values (hence identical exceedance counts),
// identical jobs cache keys, and identical checkpoint fingerprints.
func TestBatchSizeInvariance(t *testing.T) {
	designs := []struct {
		name   string
		test   string
		labels []int
	}{
		{"t-balanced", "t", []int{0, 1, 0, 1, 1, 0, 1, 0}},
		{"t-unbalanced", "t", []int{0, 0, 1, 1, 1, 1, 1, 1, 1}},
		{"t.equalvar", "t.equalvar", []int{0, 0, 0, 1, 1, 1, 1, 1}},
		{"wilcoxon", "wilcoxon", []int{0, 0, 0, 0, 1, 1, 1, 1, 1}},
		{"f", "f", []int{0, 0, 0, 1, 1, 1, 2, 2, 2}},
		{"pairt", "pairt", []int{0, 1, 1, 0, 0, 1, 1, 0}},
		{"blockf", "blockf", []int{0, 1, 2, 2, 0, 1, 1, 2, 0}},
	}
	batchSizes := []int{0, 1, 2, 7, 64, 128}
	for _, d := range designs {
		d := d
		t.Run(d.name, func(t *testing.T) {
			m := sweepMatrix(13, len(d.labels), 0xabc^uint64(len(d.labels)))
			for _, side := range []string{"abs", "upper", "lower"} {
				for _, nonpara := range []string{"n", "y"} {
					base := core.Options{
						Test: d.test, Side: side, Nonpara: nonpara,
						B: 101, Seed: 23, BatchSize: 1,
					}
					var wantRes *core.Result
					var wantKey string
					var wantFP uint64
					for _, bs := range batchSizes {
						opt := base
						opt.BatchSize = bs

						key, err := KeyMatrix(m, d.labels, opt)
						if err != nil {
							t.Fatal(err)
						}
						var fp uint64
						res, err := core.RunMatrix(m, d.labels, opt, core.RunControl{
							NProcs: 2, Every: 33,
							Save: func(c *core.Checkpoint) error { fp = c.Fingerprint; return nil },
						})
						if err != nil {
							t.Fatal(err)
						}
						if wantRes == nil {
							wantRes, wantKey, wantFP = res, key, fp
							continue
						}
						if key != wantKey {
							t.Fatalf("side=%s np=%s bs=%d: cache key %s != %s", side, nonpara, bs, key, wantKey)
						}
						if fp != wantFP {
							t.Fatalf("side=%s np=%s bs=%d: checkpoint fingerprint %x != %x", side, nonpara, bs, fp, wantFP)
						}
						for i := range wantRes.Stat {
							if math.Float64bits(res.Stat[i]) != math.Float64bits(wantRes.Stat[i]) &&
								!(math.IsNaN(res.Stat[i]) && math.IsNaN(wantRes.Stat[i])) {
								t.Fatalf("side=%s np=%s bs=%d row %d: stat %v != %v", side, nonpara, bs, i, res.Stat[i], wantRes.Stat[i])
							}
							if math.Float64bits(res.RawP[i]) != math.Float64bits(wantRes.RawP[i]) &&
								!(math.IsNaN(res.RawP[i]) && math.IsNaN(wantRes.RawP[i])) {
								t.Fatalf("side=%s np=%s bs=%d row %d: rawp %v != %v", side, nonpara, bs, i, res.RawP[i], wantRes.RawP[i])
							}
							if math.Float64bits(res.AdjP[i]) != math.Float64bits(wantRes.AdjP[i]) &&
								!(math.IsNaN(res.AdjP[i]) && math.IsNaN(wantRes.AdjP[i])) {
								t.Fatalf("side=%s np=%s bs=%d row %d: adjp %v != %v", side, nonpara, bs, i, res.AdjP[i], wantRes.AdjP[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestBatchSizeCacheHit: two submissions differing only in BatchSize must
// share one content key, so the second is answered from the result cache.
func TestBatchSizeCacheHit(t *testing.T) {
	mgr, err := NewManager(Config{Workers: 1, DefaultNProcs: 1, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	x := [][]float64{{1, 2, 3, 4, 5, 6, 0.5}, {6, 5, 4, 3, 2, 1, 2.5}, {2, 4, 1, 5, 3, 6, 1.5}}
	labels := []int{0, 0, 0, 1, 1, 1, 1}
	first := Spec{X: x, Labels: labels, Opt: core.Options{B: 50, BatchSize: 16}}
	st, err := mgr.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, mgr, st.ID)
	second := Spec{X: x, Labels: labels, Opt: core.Options{B: 50, BatchSize: 1}}
	st2, err := mgr.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Errorf("submission differing only in BatchSize missed the cache (keys %s vs %s)", st.Key, st2.Key)
	}
}
