package jobs

import (
	"bytes"
	"container/list"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sprint/internal/core"
	"sprint/internal/durable"
	"sprint/internal/matrix"
)

// This file implements the dataset plane of the job server: a
// content-addressed registry of expression matrices, so that a thousand
// jobs over one dataset upload it once, hash it once, and share one
// preparation (NA scrub, rank transform, per-row moment precompute,
// observed statistics) instead of paying ingest and prep per submission.
//
//   - Datasets are addressed by DatasetDigest: same cells, same id,
//     however the bytes arrived (rows, flat column-major JSON, or the
//     binary spb codec).  Re-uploading an existing dataset is a no-op
//     that returns the same id.
//   - Entries are ref-counted: every queued or running job holds a
//     reference, and the LRU eviction (beyond DatasetCacheSize entries)
//     only ever removes entries with zero references — an in-flight job
//     can never lose its matrix.
//   - With DatasetDir configured, every entry is mirrored to disk as
//     "<id>.spb" alongside the checkpoints, so registered datasets
//     survive a daemon restart; a memory-evicted entry silently reloads
//     from the mirror on its next use.
//   - Each entry carries a small cache of core.Prepared values keyed by
//     (labels, prep-relevant options).  Workers build a preparation once
//     per key — concurrent first users are collapsed by a sync.Once —
//     and every later job on the same key skips scrub, ranking and
//     moment precompute entirely (observable via Stats.PrepBuilds /
//     Stats.PrepHits).

// DatasetInfo is a public snapshot of one registry entry.
type DatasetInfo struct {
	// ID is the content address: the DatasetDigest of the matrix.
	ID string `json:"id"`
	// Genes and Samples give the matrix shape.
	Genes   int `json:"genes"`
	Samples int `json:"samples"`
	// Bytes is the in-memory payload size (8 bytes per cell).
	Bytes int64 `json:"bytes"`
	// Refs counts queued or running jobs currently pinning the entry.
	Refs int `json:"refs"`
	// Preps counts the cached preparations built over this dataset.
	Preps int `json:"preps"`
	// CreatedAt and LastUsedAt stamp registration and most recent use.
	CreatedAt  time.Time `json:"created_at"`
	LastUsedAt time.Time `json:"last_used_at"`
}

// dsEntry is the registry's record of one dataset.  All fields except the
// prepSlot internals are guarded by the owning Manager's mutex.
type dsEntry struct {
	id string
	m  matrix.Matrix
	el *list.Element

	refs               int
	createdAt, lastUse time.Time

	// preps caches shared preparations by prepKey.  The slot pointers are
	// handed out under the manager lock; the expensive build happens
	// outside it, serialised per slot by sync.Once.
	preps map[string]*prepSlot
}

func (e *dsEntry) info() DatasetInfo {
	return DatasetInfo{
		ID:    e.id,
		Genes: e.m.Rows, Samples: e.m.Cols,
		Bytes:     int64(len(e.m.Data)) * 8,
		Refs:      e.refs,
		Preps:     len(e.preps),
		CreatedAt: e.createdAt, LastUsedAt: e.lastUse,
	}
}

// prepSlot is the build-once holder of one shared preparation.
type prepSlot struct {
	once     sync.Once
	prepared *core.Prepared
	err      error
	lastUse  time.Time // guarded by the manager mutex, for prep eviction
}

// dsStore is the dataset registry.  Map/list state is guarded by the
// owning Manager's mutex; disk reads and writes happen outside it.
type dsStore struct {
	dir      string
	max      int // in-memory entry bound; <0 disables the registry
	maxPreps int // per-dataset preparation bound
	order    *list.List
	entries  map[string]*dsEntry
	// noteEvict, when non-nil, observes LRU evictions (count of entries
	// removed).  It is called with the manager lock held.
	noteEvict func(n int)
	// noteCorrupt, when non-nil, observes quarantined disk mirrors
	// (integrity metric).  Called WITHOUT the manager lock.
	noteCorrupt func(id string)
}

func newDSStore(dir string, max, maxPreps int) (*dsStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: dataset dir: %w", err)
		}
	}
	return &dsStore{dir: dir, max: max, maxPreps: maxPreps,
		order: list.New(), entries: make(map[string]*dsEntry)}, nil
}

func (s *dsStore) disabled() bool { return s.max < 0 }

// validDatasetID guards the id before it becomes a file name: dataset ids
// are lowercase hex SHA-256 digests, nothing else reaches the filesystem.
func validDatasetID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *dsStore) path(id string) string {
	return filepath.Join(s.dir, id+".spb")
}

// touch marks e most recently used.  Callers hold the manager lock.
func (s *dsStore) touch(e *dsEntry, now time.Time) {
	e.lastUse = now
	s.order.MoveToFront(e.el)
}

// insert records a new entry and evicts beyond the bound.  Callers hold
// the manager lock.
func (s *dsStore) insert(e *dsEntry) {
	e.el = s.order.PushFront(e)
	s.entries[e.id] = e
	s.evict(e)
}

// evict removes least-recently-used entries with zero references until
// the store is within its bound.  Entries pinned by jobs are skipped —
// the store may transiently exceed max when every entry is in use — and
// so is keep (the entry being inserted): a registration must never evict
// itself just because everything older is pinned, or the client would
// hold a 201 for an id that immediately misses.  Disk mirrors are NOT
// removed: the mirror is the persistent tier an evicted entry reloads
// from.
func (s *dsStore) evict(keep *dsEntry) {
	if s.max <= 0 {
		return
	}
	evicted := 0
	for el := s.order.Back(); el != nil && s.order.Len() > s.max; {
		prev := el.Prev()
		if e := el.Value.(*dsEntry); e.refs == 0 && e != keep {
			s.order.Remove(el)
			delete(s.entries, e.id)
			evicted++
		}
		el = prev
	}
	if evicted > 0 && s.noteEvict != nil {
		s.noteEvict(evicted)
	}
}

// remove deletes an entry from memory.  Callers hold the manager lock.
func (s *dsStore) remove(e *dsEntry) {
	s.order.Remove(e.el)
	delete(s.entries, e.id)
}

// writeDisk mirrors the matrix to "<id>.spb" (no-op without a dir)
// through the durable atomic-write path: temp file, fsync, rename,
// directory fsync — a crash never leaves a torn dataset, and the
// rename itself survives power loss.  Call without holding the manager
// lock.
func (s *dsStore) writeDisk(id string, m matrix.Matrix) error {
	if s.dir == "" {
		return nil
	}
	if fi, err := os.Stat(s.path(id)); err == nil && fi.Mode().IsRegular() {
		return nil // already mirrored (content-addressed: bytes identical)
	}
	var buf bytes.Buffer
	if err := matrix.Encode(&buf, m, nil, nil, matrix.RowMajor); err != nil {
		return err
	}
	return durable.WriteFileAtomic(s.path(id), buf.Bytes(), "dataset.write")
}

// readDisk loads a mirrored dataset and verifies its content address.
// A mirror whose bytes fail to decode or whose digest no longer matches
// its name is quarantined (renamed to "<id>.spb.corrupt") and reported
// as ErrUnknownDataset — the repair paths already exist: a coordinator
// re-pushes on 404, a client re-uploads the same bytes.  Call without
// holding the manager lock.
func (s *dsStore) readDisk(id string) (matrix.Matrix, error) {
	if s.dir == "" || !validDatasetID(id) {
		return matrix.Matrix{}, ErrUnknownDataset
	}
	data, err := durable.ReadFile(s.path(id), "dataset.read")
	if err != nil {
		return matrix.Matrix{}, ErrUnknownDataset
	}
	quarantine := func() {
		_ = durable.Quarantine(s.path(id))
		if s.noteCorrupt != nil {
			s.noteCorrupt(id)
		}
	}
	sf, err := matrix.Decode(bytes.NewReader(data))
	if err != nil {
		quarantine()
		return matrix.Matrix{}, ErrUnknownDataset
	}
	// The file name claims the content; verify it, so a corrupted or
	// hand-renamed mirror can never serve the wrong cells under this id.
	if got := DatasetDigest(sf.M); got != id {
		quarantine()
		return matrix.Matrix{}, ErrUnknownDataset
	}
	return sf.M, nil
}

// readDiskInfo reads a mirrored dataset's shape from its spb header
// without decoding the payload.  Call without holding the manager lock.
func (s *dsStore) readDiskInfo(id string) (genes, samples int, err error) {
	if s.dir == "" || !validDatasetID(id) {
		return 0, 0, ErrUnknownDataset
	}
	f, err := os.Open(s.path(id))
	if err != nil {
		return 0, 0, ErrUnknownDataset
	}
	defer f.Close()
	genes, samples, err = matrix.ReadSPBHeader(f)
	if err != nil {
		return 0, 0, fmt.Errorf("jobs: dataset mirror %s: %w", id, err)
	}
	return genes, samples, nil
}

// prepKeyFor identifies a shared preparation: the prep-relevant option
// subset (test, side, nonpara, NA code) plus the class labels.  opt must
// already be canonical.
func prepKeyFor(opt core.Options, labels []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|%s|%016x|", opt.Test, opt.Side, opt.Nonpara, math.Float64bits(opt.NA))
	for _, l := range labels {
		fmt.Fprintf(&sb, "%d,", l)
	}
	return sb.String()
}

// prepSlotFor returns the entry's build-once slot for (opt, labels),
// creating it (and evicting the least recently used preparation beyond
// maxPreps) on first request.  The second return reports whether the slot
// already existed — a preparation cache hit.  Callers hold the manager
// lock; the actual build runs later, outside it, via slot.once.
func (s *dsStore) prepSlotFor(e *dsEntry, opt core.Options, labels []int, now time.Time) (*prepSlot, bool) {
	key := prepKeyFor(opt, labels)
	if slot, ok := e.preps[key]; ok {
		slot.lastUse = now
		return slot, true
	}
	if s.maxPreps > 0 && len(e.preps) >= s.maxPreps {
		oldestKey := ""
		var oldest time.Time
		for k, sl := range e.preps {
			if oldestKey == "" || sl.lastUse.Before(oldest) {
				oldestKey, oldest = k, sl.lastUse
			}
		}
		delete(e.preps, oldestKey)
	}
	slot := &prepSlot{lastUse: now}
	e.preps[key] = slot
	return slot, false
}

// ---- Manager surface ---------------------------------------------------

// PutDataset registers a matrix in the content-addressed registry and
// returns its info plus whether the call created it (false = the dataset
// was already registered; uploads deduplicate by content).  The manager
// takes ownership of m: callers must not modify it afterwards.  With a
// dataset directory configured the matrix is also mirrored to disk, so it
// survives both LRU eviction and a daemon restart.
func (m *Manager) PutDataset(x matrix.Matrix) (DatasetInfo, bool, error) {
	if x.IsEmpty() {
		return DatasetInfo{}, false, fmt.Errorf("jobs: empty dataset")
	}
	if len(x.Data) != x.Rows*x.Cols {
		return DatasetInfo{}, false, fmt.Errorf("jobs: dataset has %d values for %dx%d", len(x.Data), x.Rows, x.Cols)
	}
	// The digest is a full pass over the cells: compute it before taking
	// the lock so concurrent uploads hash in parallel.
	id := DatasetDigest(x)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return DatasetInfo{}, false, ErrClosed
	}
	if m.datasets.disabled() {
		m.mu.Unlock()
		return DatasetInfo{}, false, ErrDatasetsDisabled
	}
	now := m.cfg.Clock()
	if e, ok := m.datasets.entries[id]; ok {
		m.datasets.touch(e, now)
		info := e.info()
		m.mu.Unlock()
		// Re-uploading is the repair path for a previously failed mirror:
		// writeDisk no-ops when the mirror already exists, and writes it
		// when an earlier attempt failed (disk full, since fixed) — so a
		// re-PUT of the same bytes restores restart durability instead of
		// silently leaving the dataset memory-only.
		if err := m.datasets.writeDisk(id, e.m); err != nil {
			return info, false, fmt.Errorf("jobs: dataset registered but disk mirror failed: %w", err)
		}
		return info, false, nil
	}
	e := &dsEntry{id: id, m: x, createdAt: now, lastUse: now, preps: make(map[string]*prepSlot)}
	m.datasets.insert(e)
	m.stats.DatasetsAdded++
	info := e.info()
	m.mu.Unlock()
	m.met.dsAdded.Inc()

	// The disk mirror write happens outside the lock (it can be tens of
	// megabytes).  A mirror failure degrades durability, not service:
	// the in-memory entry stays valid, so the error is reported but the
	// id remains usable.
	if err := m.datasets.writeDisk(id, x); err != nil {
		return info, true, fmt.Errorf("jobs: dataset registered but disk mirror failed: %w", err)
	}
	return info, true, nil
}

// Datasets lists the registered datasets, most recently used first.
func (m *Manager) Datasets() []DatasetInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DatasetInfo, 0, len(m.datasets.entries))
	for el := m.datasets.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*dsEntry).info())
	}
	return out
}

// DatasetInfoByID returns the info of one registered dataset.  It is a
// pure read: an entry evicted to the disk mirror is answered from the
// spb header alone (id, shape, size) — no multi-megabyte decode, no
// digest pass, and no LRU mutation for a metadata request.
func (m *Manager) DatasetInfoByID(id string) (DatasetInfo, error) {
	m.mu.Lock()
	if m.datasets.disabled() {
		m.mu.Unlock()
		return DatasetInfo{}, ErrDatasetsDisabled
	}
	if e, ok := m.datasets.entries[id]; ok {
		info := e.info()
		m.mu.Unlock()
		return info, nil
	}
	m.mu.Unlock()
	genes, samples, err := m.datasets.readDiskInfo(id)
	if err != nil {
		return DatasetInfo{}, err
	}
	return DatasetInfo{ID: id, Genes: genes, Samples: samples, Bytes: int64(genes) * int64(samples) * 8}, nil
}

// DeleteDataset removes a dataset from the registry, memory and disk
// mirror both.  Datasets still referenced by queued or running jobs are
// protected (ErrDatasetBusy).  The mirror removal happens under the
// manager lock — it is one cheap unlink, and keeping it inside the
// critical section is what lets datasetRef's reload path detect a
// concurrent delete instead of resurrecting the entry.
func (m *Manager) DeleteDataset(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.datasets.disabled() {
		return ErrDatasetsDisabled
	}
	e, ok := m.datasets.entries[id]
	if ok && e.refs > 0 {
		return ErrDatasetBusy
	}
	if ok {
		m.datasets.remove(e)
	}
	onDisk := false
	if m.datasets.dir != "" && validDatasetID(id) {
		p := m.datasets.path(id)
		if _, err := os.Stat(p); err == nil {
			onDisk = true
			if err := os.Remove(p); err != nil {
				// The mirror survived: the id would silently resurrect on
				// the next reload, so a confirmed delete must not be
				// reported.
				return fmt.Errorf("jobs: deleting dataset mirror: %w", err)
			}
		}
	}
	if !ok && !onDisk {
		return ErrUnknownDataset
	}
	return nil
}

// datasetRef resolves a dataset id to its entry with the reference count
// incremented — the caller owns one reference and must release it via
// releaseDatasetLocked.  Entries evicted from memory fall back to the
// disk mirror.
func (m *Manager) datasetRef(id string) (*dsEntry, error) {
	m.mu.Lock()
	if m.datasets.disabled() {
		m.mu.Unlock()
		return nil, ErrDatasetsDisabled
	}
	now := m.cfg.Clock()
	if e, ok := m.datasets.entries[id]; ok {
		e.refs++
		m.stats.DatasetHits++
		m.datasets.touch(e, now)
		m.mu.Unlock()
		m.met.dsHits.Inc()
		return e, nil
	}
	m.mu.Unlock()

	// Miss: try the disk mirror outside the lock (a decode can be tens
	// of megabytes and must not stall API handlers).
	x, err := m.datasets.readDisk(id)
	if err != nil {
		return nil, err
	}
	m.met.dsReloads.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.stats.DatasetReloads++
	now = m.cfg.Clock()
	if e, ok := m.datasets.entries[id]; ok { // lost a reload race: use theirs
		e.refs++
		m.datasets.touch(e, now)
		return e, nil
	}
	// The reload read the mirror OUTSIDE the lock, so a concurrent
	// DeleteDataset (which unlinks under the lock) may have confirmed a
	// deletion in between — the open fd kept the bytes readable past the
	// unlink.  Re-checking the mirror's existence under the lock closes
	// that window: a deleted dataset must stay deleted, not resurrect.
	if _, err := os.Stat(m.datasets.path(id)); err != nil {
		return nil, ErrUnknownDataset
	}
	e := &dsEntry{id: id, m: x, refs: 1, createdAt: now, lastUse: now, preps: make(map[string]*prepSlot)}
	m.datasets.insert(e)
	return e, nil
}

// releaseDatasetLocked drops one job reference.  Callers hold m.mu.
func (m *Manager) releaseDatasetLocked(e *dsEntry) {
	if e == nil {
		return
	}
	e.refs--
	m.datasets.evict(nil) // an unpinned entry may now satisfy a pending bound
}

// preparedFor returns the shared preparation for a dataset job, building
// it on first use.  Concurrent first users of one (dataset, labels,
// options) key block on a single build; every other caller reuses the
// cached value without touching a cell.  The spec's options must already
// be canonical (Submit guarantees it).
func (m *Manager) preparedFor(j *job) (*core.Prepared, error) {
	m.mu.Lock()
	e := j.ds
	m.mu.Unlock()
	if e == nil {
		return nil, ErrUnknownDataset
	}
	return m.prepFromEntry(e, j.spec.Labels, j.spec.Opt)
}
