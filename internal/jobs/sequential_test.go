package jobs

import (
	"sync/atomic"
	"testing"

	"sprint/internal/core"
	"sprint/internal/microarray"
)

// seqSpec builds a submission big enough for the stopping rule to bite:
// mostly-null rows settle fast, so the job stops far short of its planned
// B.
func seqSpec(t *testing.T) Spec {
	t.Helper()
	data, err := microarray.Generate(microarray.GenOptions{
		Genes: 120, Samples: 24, Classes: 2,
		DiffFraction: 0.05, EffectSize: 2.5, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.B = 40000
	opt.Seed = 21
	opt.Mode = core.ModeSequential
	return Spec{X: data.X, Labels: data.Labels, Opt: opt, NProcs: 2, Every: 2048}
}

func TestSequentialJobLifecycle(t *testing.T) {
	spec := seqSpec(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != core.ModeSequential {
		t.Fatalf("queued status mode %q, want sequential", st.Mode)
	}
	fin := waitTerminal(t, m, st.ID)
	if fin.State != Done {
		t.Fatalf("final status %+v", fin)
	}
	// A finished sequential job reports the PLANNED total (so progress
	// reads 100%) and its accumulated savings.
	if fin.Total != spec.Opt.B {
		t.Fatalf("final Total = %d, want planned %d", fin.Total, spec.Opt.B)
	}
	if fin.SeqActiveRows != 0 {
		t.Fatalf("final SeqActiveRows = %d, want 0", fin.SeqActiveRows)
	}
	if fin.SeqPermsSaved <= 0 {
		t.Fatalf("final SeqPermsSaved = %d, want > 0", fin.SeqPermsSaved)
	}

	res, _, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(spec.X, spec.Labels, spec.Opt,
		core.RunControl{NProcs: spec.NProcs, Every: spec.Every})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sequential() || res.B != want.B || res.PlannedB != spec.Opt.B {
		t.Fatalf("result metadata: mode=%q B=%d plannedB=%d, want sequential B=%d plannedB=%d",
			res.Mode, res.B, res.PlannedB, want.B, spec.Opt.B)
	}
	sameFloats(t, "RawP", res.RawP, want.RawP)
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
	for i, be := range want.BEff {
		if res.BEff[i] != be {
			t.Fatalf("BEff[%d] = %d, want %d", i, res.BEff[i], be)
		}
	}

	s := m.StatsSnapshot()
	if s.SeqRowsStopped != int64(want.SeqRowsStopped()) {
		t.Fatalf("stats SeqRowsStopped = %d, want %d", s.SeqRowsStopped, want.SeqRowsStopped())
	}
	if s.SeqPermsSaved != want.SeqPermsSaved() {
		t.Fatalf("stats SeqPermsSaved = %d, want %d", s.SeqPermsSaved, want.SeqPermsSaved())
	}
	if want.B < want.PlannedB && s.SeqJobsEarlyStopped != 1 {
		t.Fatalf("stats SeqJobsEarlyStopped = %d, want 1", s.SeqJobsEarlyStopped)
	}
}

// TestSequentialJobCrashResume is the sequential twin of
// TestCheckpointSurvivesRestart: cancel a sequential job mid-run, restart
// the manager over the same checkpoint directory, resubmit, and demand the
// finished result be bit-identical to an uninterrupted run — including the
// per-row effective counts.
func TestSequentialJobCrashResume(t *testing.T) {
	spec := seqSpec(t)
	dir := t.TempDir()
	var mgr atomic.Pointer[Manager]
	var once atomic.Bool
	m1, err := NewManager(Config{
		Workers:       1,
		CheckpointDir: dir,
		OnCheckpoint: func(id string, done, total int64) {
			if done >= 2*spec.Every && once.CompareAndSwap(false, true) {
				mgr.Load().Cancel(id)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Store(m1)
	st1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin1 := waitTerminal(t, m1, st1.ID)
	if fin1.State != Cancelled {
		t.Skipf("job finished before the cancel landed (state %s); stopping rule fired very early", fin1.State)
	}
	m1.Close() // "daemon crash"

	m2, err := NewManager(Config{Workers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st2, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitTerminal(t, m2, st2.ID)
	if fin2.State != Done || fin2.ResumedFrom < 2*spec.Every {
		t.Fatalf("post-restart job %+v, want Done resumed from >= %d", fin2, 2*spec.Every)
	}

	res, _, err := m2.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(spec.X, spec.Labels, spec.Opt,
		core.RunControl{NProcs: spec.NProcs, Every: spec.Every})
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "RawP", res.RawP, want.RawP)
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
	if res.B != want.B {
		t.Fatalf("resumed job ran %d permutations, uninterrupted runs %d", res.B, want.B)
	}
	for i, be := range want.BEff {
		if res.BEff[i] != be {
			t.Fatalf("BEff[%d] = %d after crash-resume, want %d", i, res.BEff[i], be)
		}
	}
}

// TestKeyExactModeStable pins the cache-compatibility contract: exact-mode
// content keys are byte-identical to the pre-mode engine's (an explicit
// "exact" spells the default), while sequential jobs key on mode and both
// stopping knobs.
func TestKeyExactModeStable(t *testing.T) {
	spec := testSpec(t)
	legacy, err := Key(spec.X, spec.Labels, spec.Opt)
	if err != nil {
		t.Fatal(err)
	}
	opt := spec.Opt
	opt.Mode = core.ModeExact
	explicit, err := Key(spec.X, spec.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if explicit != legacy {
		t.Fatal("explicit exact mode changed the content key")
	}

	opt.Mode = core.ModeSequential
	seq, err := Key(spec.X, spec.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seq == legacy {
		t.Fatal("sequential mode shares the exact content key")
	}
	opt.SeqAlpha = 0.01
	seqAlpha, err := Key(spec.X, spec.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.SeqAlpha, opt.SeqTolerance = 0, 0.01
	seqTol, err := Key(spec.X, spec.Labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seqAlpha == seq || seqTol == seq || seqAlpha == seqTol {
		t.Fatal("sequential stopping knobs do not reach the content key")
	}
}

// TestApplyModeDefaults covers the daemon-level -mode default: it fills
// only submissions that did not choose, and the explicit knobs always win.
func TestApplyModeDefaults(t *testing.T) {
	cfg := Config{DefaultMode: core.ModeSequential, DefaultSeqAlpha: 0.01, DefaultSeqTolerance: 0.015}
	opt := cfg.applyModeDefaults(core.Options{})
	if opt.Mode != core.ModeSequential || opt.SeqAlpha != 0.01 || opt.SeqTolerance != 0.015 {
		t.Fatalf("defaults not applied: %+v", opt)
	}
	opt = cfg.applyModeDefaults(core.Options{Mode: core.ModeExact})
	if opt.Mode != core.ModeExact || opt.SeqAlpha != 0 || opt.SeqTolerance != 0 {
		t.Fatalf("explicit exact overridden: %+v", opt)
	}
	opt = cfg.applyModeDefaults(core.Options{Mode: core.ModeSequential, SeqAlpha: 0.2})
	if opt.SeqAlpha != 0.2 || opt.SeqTolerance != 0.015 {
		t.Fatalf("explicit alpha clobbered: %+v", opt)
	}
	if opt := (Config{}).applyModeDefaults(core.Options{}); opt.Mode != "" {
		t.Fatalf("no-default config rewrote mode: %+v", opt)
	}
}
