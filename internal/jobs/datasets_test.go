package jobs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sprint/internal/core"
	"sprint/internal/matrix"
)

// dsTestMatrix flattens testSpec's dataset into the engine's row-major
// matrix, the form PutDataset consumes.
func dsTestMatrix(t *testing.T) (matrix.Matrix, []int, core.Options) {
	t.Helper()
	spec := testSpec(t)
	m, err := matrix.FromRows(spec.X)
	if err != nil {
		t.Fatal(err)
	}
	return m, spec.Labels, spec.Opt
}

// TestDatasetUploadDedup: registering the same cells twice must yield the
// same id with created=false — content addressing, not versioning.
func TestDatasetUploadDedup(t *testing.T) {
	x, _, _ := dsTestMatrix(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	info1, created, err := m.PutDataset(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first upload not created")
	}
	if !validDatasetID(info1.ID) {
		t.Fatalf("dataset id %q is not a hex digest", info1.ID)
	}
	info2, created, err := m.PutDataset(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("re-upload of identical bytes claimed to create a new dataset")
	}
	if info2.ID != info1.ID {
		t.Fatalf("same bytes, different ids: %s vs %s", info1.ID, info2.ID)
	}
	if got := m.StatsSnapshot(); got.Datasets != 1 || got.DatasetsAdded != 1 {
		t.Fatalf("stats %+v, want 1 dataset added once", got)
	}
	// A different matrix must get a different id.
	y := x.Clone()
	y.Data[0]++
	info3, created, err := m.PutDataset(y)
	if err != nil || !created {
		t.Fatalf("modified upload: created=%v err=%v", created, err)
	}
	if info3.ID == info1.ID {
		t.Fatal("different cells collided on one id")
	}
}

// TestDatasetSubmissionMatchesXFlat: a dataset-id job must share the
// content key of — and return bitwise identical results to — the same
// analysis submitted as an x_flat payload.
func TestDatasetSubmissionMatchesXFlat(t *testing.T) {
	x, labels, opt := dsTestMatrix(t)

	// Manager A computes via the flat payload path.
	ma, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	flat := flatSpec(t)
	stA, err := ma.Submit(flat)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, ma, stA.ID); fin.State != Done {
		t.Fatalf("flat job finished %+v", fin)
	}
	resA, _, err := ma.Result(stA.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Manager B computes via the dataset plane (separate manager, so no
	// result cache can mask a divergence).
	mb, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	info, _, err := mb.PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := mb.Submit(Spec{DatasetID: info.ID, Labels: labels, Opt: opt, NProcs: 2, Every: 100})
	if err != nil {
		t.Fatal(err)
	}
	if stB.Key != stA.Key {
		t.Fatalf("dataset key %s != x_flat key %s", stB.Key, stA.Key)
	}
	if fin := waitTerminal(t, mb, stB.ID); fin.State != Done {
		t.Fatalf("dataset job finished %+v", fin)
	}
	resB, _, err := mb.Result(stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "Stat", resB.Stat, resA.Stat)
	sameFloats(t, "RawP", resB.RawP, resA.RawP)
	sameFloats(t, "AdjP", resB.AdjP, resA.AdjP)

	// And resubmitting by dataset id hits the shared result cache.
	stC, err := mb.Submit(Spec{DatasetID: info.ID, Labels: labels, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	if stC.State != Done || !stC.CacheHit {
		t.Fatalf("dataset resubmission not a cache hit: %+v", stC)
	}
}

// TestDatasetPrepReuse: N jobs over one dataset with different seeds must
// build the preparation exactly once — the cross-job Prep reuse the data
// plane exists for — and the reuse must be visible in both the manager
// stats and the process-wide core.PrepBuilds counter.
func TestDatasetPrepReuse(t *testing.T) {
	x, labels, opt := dsTestMatrix(t)
	m, err := NewManager(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, _, err := m.PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 6
	before := core.PrepBuilds()
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		o := opt
		o.Seed = uint64(100 + i) // distinct content keys: no result-cache hits
		st, err := m.Submit(Spec{DatasetID: info.ID, Labels: labels, Opt: o})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		if fin := waitTerminal(t, m, id); fin.State != Done {
			t.Fatalf("job %s finished %+v", id, fin)
		}
	}
	if got := core.PrepBuilds() - before; got != 1 {
		t.Fatalf("%d jobs built %d preparations, want exactly 1", jobs, got)
	}
	st := m.StatsSnapshot()
	if st.PrepBuilds != 1 || st.PrepHits != jobs-1 {
		t.Fatalf("prep stats builds=%d hits=%d, want 1/%d", st.PrepBuilds, st.PrepHits, jobs-1)
	}

	// A different prep key (other labels) builds a second preparation.
	swapped := append([]int(nil), labels...)
	swapped[0], swapped[len(swapped)-1] = swapped[len(swapped)-1], swapped[0]
	o := opt
	o.Seed = 999
	st2, err := m.Submit(Spec{DatasetID: info.ID, Labels: swapped, Opt: o})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st2.ID)
	if got := core.PrepBuilds() - before; got != 2 {
		t.Fatalf("new labels built %d preparations total, want 2", got)
	}
}

// TestDatasetRefBlocksEviction: a dataset pinned by a queued job must
// survive LRU pressure; once the job is terminal the pin is gone and the
// next insertion evicts it.
func TestDatasetRefBlocksEviction(t *testing.T) {
	x, labels, opt := dsTestMatrix(t)
	gate := make(chan struct{})
	var once sync.Once
	m, err := NewManager(Config{
		Workers:          1,
		DatasetCacheSize: 1,
		// The first checkpoint of the decoy job blocks its worker, so the
		// dataset job behind it stays queued — holding its reference —
		// for as long as the test needs.
		OnCheckpoint: func(string, int64, int64) { once.Do(func() { <-gate }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer once.Do(func() { close(gate) }) // unblock on any failure path

	info, _, err := m.PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only worker with a matrix-payload job that checkpoints
	// (and therefore blocks) almost immediately.
	decoy := testSpec(t)
	decoy.Every = 50
	decoySt, err := m.Submit(decoy)
	if err != nil {
		t.Fatal(err)
	}
	// The dataset job queues behind it, pinning the dataset.
	dsSt, err := m.Submit(Spec{DatasetID: info.ID, Labels: labels, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}

	// LRU pressure: two more uploads into a cache of 1.  The pinned
	// dataset must survive both.
	for i := 0; i < 2; i++ {
		y := x.Clone()
		y.Data[0] = float64(1000 + i)
		if _, _, err := m.PutDataset(y); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	for _, d := range m.Datasets() {
		if d.ID == info.ID {
			found = true
			if d.Refs != 1 {
				t.Fatalf("pinned dataset has %d refs, want 1", d.Refs)
			}
		}
	}
	if !found {
		t.Fatal("dataset referenced by a queued job was evicted")
	}

	// Release the worker; both jobs run to completion, dropping the pin;
	// the release-time eviction brings the store back within its bound.
	// The job's dataset survives this round — running it made it the most
	// recently used entry — but it is now evictable like any other.
	once.Do(func() { close(gate) })
	waitTerminal(t, m, decoySt.ID)
	if fin := waitTerminal(t, m, dsSt.ID); fin.State != Done {
		t.Fatalf("dataset job finished %+v", fin)
	}
	if got := len(m.Datasets()); got != 1 {
		t.Fatalf("registry holds %d datasets after release, want 1 (the bound)", got)
	}
	z := x.Clone()
	z.Data[0] = 7777
	if _, _, err := m.PutDataset(z); err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Datasets() {
		if d.ID == info.ID {
			t.Fatal("unpinned dataset survived fresh eviction pressure")
		}
	}
}

// TestDatasetConcurrentUploadAndSubmit exercises the registry under
// concurrent uploads, dataset submissions and flat submissions — the
// -race beat for the dataset plane.
func TestDatasetConcurrentUploadAndSubmit(t *testing.T) {
	x, labels, opt := dsTestMatrix(t)
	m, err := NewManager(Config{Workers: 2, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, _, err := m.PutDataset(x.Clone())
	if err != nil {
		t.Fatal(err)
	}

	const per = 4
	var wg sync.WaitGroup
	errs := make(chan error, per*3)
	jobIDs := make(chan string, per*2)
	for g := 0; g < per; g++ {
		wg.Add(3)
		go func() { // concurrent dedup uploads
			defer wg.Done()
			in, created, err := m.PutDataset(x.Clone())
			if err != nil {
				errs <- err
				return
			}
			if created || in.ID != info.ID {
				errs <- fmt.Errorf("concurrent upload diverged: created=%v id=%s", created, in.ID)
			}
		}()
		go func(seed uint64) { // dataset submissions
			defer wg.Done()
			o := opt
			o.Seed = seed
			st, err := m.Submit(Spec{DatasetID: info.ID, Labels: labels, Opt: o})
			if err != nil {
				errs <- err
				return
			}
			jobIDs <- st.ID
		}(uint64(g))
		go func(seed uint64) { // flat submissions of the same cells
			defer wg.Done()
			spec := flatSpec(t)
			spec.Opt.Seed = seed
			st, err := m.Submit(spec)
			if err != nil {
				errs <- err
				return
			}
			jobIDs <- st.ID
		}(uint64(g))
	}
	wg.Wait()
	close(errs)
	close(jobIDs)
	for err := range errs {
		t.Fatal(err)
	}
	for id := range jobIDs {
		if fin := waitTerminal(t, m, id); fin.State != Done {
			t.Fatalf("job %s finished %+v", id, fin)
		}
	}
}

// TestDatasetDiskMirror: with a dataset directory, a registered dataset
// survives a manager restart — a fresh manager serves submissions against
// the old id by reloading the mirror.
func TestDatasetDiskMirror(t *testing.T) {
	x, labels, opt := dsTestMatrix(t)
	dir := t.TempDir()

	m1, err := NewManager(Config{Workers: 1, DatasetDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := m1.PutDataset(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := NewManager(Config{Workers: 1, DatasetDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st, err := m2.Submit(Spec{DatasetID: info.ID, Labels: labels, Opt: opt})
	if err != nil {
		t.Fatalf("submission against mirrored dataset: %v", err)
	}
	if fin := waitTerminal(t, m2, st.ID); fin.State != Done {
		t.Fatalf("mirrored job finished %+v", fin)
	}
	res, _, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MaxT(testSpec(t).X, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "AdjP", res.AdjP, want.AdjP)
}

// TestDatasetErrors pins the failure modes of the dataset plane.
func TestDatasetErrors(t *testing.T) {
	x, labels, opt := dsTestMatrix(t)
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Submit(Spec{DatasetID: "0123", Labels: labels, Opt: opt}); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown dataset submit: %v, want ErrUnknownDataset", err)
	}
	if err := m.DeleteDataset("deadbeef"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown dataset delete: %v, want ErrUnknownDataset", err)
	}
	if _, err := m.Submit(Spec{DatasetID: "abc", X: [][]float64{{1}}, Labels: labels, Opt: opt}); err == nil {
		t.Error("dataset id plus matrix payload accepted")
	}
	if _, _, err := m.PutDataset(matrix.Matrix{}); err == nil {
		t.Error("empty dataset accepted")
	}

	info, _, err := m.PutDataset(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteDataset(info.ID); err != nil {
		t.Errorf("deleting idle dataset: %v", err)
	}
	if _, err := m.Submit(Spec{DatasetID: info.ID, Labels: labels, Opt: opt}); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("submit after delete: %v, want ErrUnknownDataset", err)
	}

	// Disabled registry.
	md, err := NewManager(Config{Workers: 1, DatasetCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	if _, _, err := md.PutDataset(x.Clone()); !errors.Is(err, ErrDatasetsDisabled) {
		t.Errorf("disabled registry put: %v, want ErrDatasetsDisabled", err)
	}
}

// TestDatasetInfoIsAPureRead: info for a disk-mirrored, memory-evicted
// dataset must come from the spb header alone — no payload decode, no
// registry insertion.
func TestDatasetInfoIsAPureRead(t *testing.T) {
	x, _, _ := dsTestMatrix(t)
	dir := t.TempDir()
	m1, err := NewManager(Config{Workers: 1, DatasetDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := m1.PutDataset(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := NewManager(Config{Workers: 1, DatasetDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.DatasetInfoByID(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Genes != info.Genes || got.Samples != info.Samples || got.Bytes != info.Bytes {
		t.Fatalf("disk info %+v, want shape of %+v", got, info)
	}
	if n := len(m2.Datasets()); n != 0 {
		t.Fatalf("info request materialised %d registry entries, want 0", n)
	}
}

// TestInsertNeverEvictsItself: registering into a registry whose every
// entry is pinned must keep the new entry — a 201-confirmed id must not
// miss on its first use.
func TestInsertNeverEvictsItself(t *testing.T) {
	x, _, _ := dsTestMatrix(t)
	m, err := NewManager(Config{Workers: 1, DatasetCacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, _, err := m.PutDataset(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Pin the only entry directly (what a queued job's Submit does).
	if _, err := m.datasetRef(info.ID); err != nil {
		t.Fatal(err)
	}
	y := x.Clone()
	y.Data[0] = 31337
	info2, created, err := m.PutDataset(y)
	if err != nil || !created {
		t.Fatalf("second upload: created=%v err=%v", created, err)
	}
	ids := map[string]bool{}
	for _, d := range m.Datasets() {
		ids[d.ID] = true
	}
	if !ids[info2.ID] {
		t.Fatal("freshly registered dataset was evicted by its own insertion")
	}
	if !ids[info.ID] {
		t.Fatal("pinned dataset was evicted")
	}
}

// TestDatasetMirrorFailureStillRegisters: when the disk mirror cannot be
// written the dataset must still be registered and usable; the error is
// reported alongside the id, not instead of it.
func TestDatasetMirrorFailureStillRegisters(t *testing.T) {
	x, labels, opt := dsTestMatrix(t)
	dir := t.TempDir()
	id := DatasetDigest(x)
	// A directory squatting on the mirror path makes the rename fail.
	if err := os.MkdirAll(filepath.Join(dir, id+".spb"), 0o755); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Workers: 1, DatasetDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	info, created, err := m.PutDataset(x)
	if err == nil {
		t.Fatal("mirror write into a squatted path succeeded unexpectedly")
	}
	if !created || info.ID != id {
		t.Fatalf("mirror failure lost the registration: created=%v info=%+v", created, info)
	}
	// The id is served from memory regardless.
	st, err := m.Submit(Spec{DatasetID: id, Labels: labels, Opt: opt})
	if err != nil {
		t.Fatalf("submission against mirror-failed dataset: %v", err)
	}
	if fin := waitTerminal(t, m, st.ID); fin.State != Done {
		t.Fatalf("job finished %+v", fin)
	}
}

// TestDeleteDatasetReportsUndeletableMirror: a delete that cannot remove
// the disk mirror must fail, not confirm a deletion that would silently
// resurrect on the next reload.
func TestDeleteDatasetReportsUndeletableMirror(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Config{Workers: 1, DatasetDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// A non-empty directory at the mirror path: Stat sees it, Remove
	// cannot delete it.
	id := strings.Repeat("ab", 32)
	if err := os.MkdirAll(filepath.Join(dir, id+".spb", "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteDataset(id); err == nil {
		t.Fatal("delete confirmed although the mirror still exists")
	}
}
