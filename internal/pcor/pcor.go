// Package pcor implements SPRINT's original prototype function: the
// parallel Pearson correlation of Hill et al. (2008), cited by the paper
// as the function that "parallelized a key statistical correlation function
// of important generic use to machine learning algorithms (clustering,
// classification) in genomic data analysis" (Section 1).
//
// pcor computes the rows×rows correlation matrix of an expression matrix.
// Unlike pmaxT — which distributes the permutation count — pcor distributes
// the *output rows*: each rank computes the correlations of its row chunk
// against all rows, and the master gathers the strips.  Having both
// functions in the registry demonstrates the SPRINT framework's design
// point that differently-parallelised functions share one worker pool.
package pcor

import (
	"fmt"
	"math"

	"sprint/internal/mpi"
	"sprint/internal/sprintfw"
)

// FunctionName is the registry name, matching SPRINT's pcor.
const FunctionName = "pcor"

// job carries the master's input into the collective evaluation.
type job struct {
	x [][]float64
}

// Result is the correlation matrix, row-major, with Matrix[i][j] the
// Pearson correlation of rows i and j.  Rows with zero variance (or fewer
// than two finite pairings) correlate as NaN.
type Result struct {
	Matrix [][]float64
}

// NewFunction returns the sprintfw registration of pcor.
func NewFunction() sprintfw.Function {
	return sprintfw.FuncOf(FunctionName, eval)
}

// Register adds pcor to an existing SPRINT registry.
func Register(reg *sprintfw.Registry) { reg.MustRegister(NewFunction()) }

// Pcor computes the correlation matrix of x on nprocs ranks through the
// SPRINT framework.
func Pcor(x [][]float64, nprocs int) (*Result, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("pcor: nprocs = %d must be positive", nprocs)
	}
	reg := sprintfw.NewRegistry()
	Register(reg)
	var res *Result
	err := sprintfw.Run(nprocs, reg, func(s *sprintfw.Session) error {
		out, err := s.Call(FunctionName, &job{x: x})
		if err != nil {
			return err
		}
		res = out.(*Result)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// eval is the collective body: broadcast the data, compute a row strip per
// rank, gather the strips on the master.
func eval(c *mpi.Comm, args any) (any, error) {
	var x [][]float64
	if c.Rank() == 0 {
		j, ok := args.(*job)
		if !ok {
			return nil, fmt.Errorf("pcor: called with %T, want *job", args)
		}
		if len(j.x) == 0 {
			return nil, fmt.Errorf("pcor: empty matrix")
		}
		for i, row := range j.x {
			if len(row) != len(j.x[0]) {
				return nil, fmt.Errorf("pcor: row %d has %d columns, row 0 has %d", i, len(row), len(j.x[0]))
			}
		}
		x = j.x
	}
	x = mpi.Bcast(c, 0, x)
	n := len(x)

	// Standardise every row once: correlation of standardised rows is a
	// plain dot product over the columns.
	std := make([][]float64, n)
	for i, row := range x {
		std[i] = standardise(row)
	}

	lo, hi := chunk(n, c.Size(), c.Rank())
	strip := make([][]float64, hi-lo)
	for i := lo; i < hi; i++ {
		out := make([]float64, n)
		for j := 0; j < n; j++ {
			out[j] = dotCorr(std[i], std[j])
		}
		strip[i-lo] = out
	}

	strips := mpi.Gather(c, 0, strip)
	if c.Rank() != 0 {
		return nil, nil
	}
	matrix := make([][]float64, 0, n)
	for _, s := range strips {
		matrix = append(matrix, s...)
	}
	return &Result{Matrix: matrix}, nil
}

// chunk splits n output rows across size ranks, same balanced contiguous
// rule as pmaxT's permutation chunks.
func chunk(n, size, rank int) (lo, hi int) {
	return n * rank / size, n * (rank + 1) / size
}

// standardise returns (row - mean)/sd with NaN entries zeroed out (missing
// values contribute nothing to the dot product), or all-NaN if the row has
// no variance.
func standardise(row []float64) []float64 {
	var sum float64
	var cnt int
	for _, v := range row {
		if !math.IsNaN(v) {
			sum += v
			cnt++
		}
	}
	out := make([]float64, len(row))
	if cnt < 2 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	mean := sum / float64(cnt)
	var ss float64
	for _, v := range row {
		if !math.IsNaN(v) {
			d := v - mean
			ss += d * d
		}
	}
	if ss == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	inv := 1 / math.Sqrt(ss)
	for i, v := range row {
		if math.IsNaN(v) {
			out[i] = 0
		} else {
			out[i] = (v - mean) * inv
		}
	}
	return out
}

// dotCorr is the correlation of two standardised rows.  A NaN marker in
// either row (zero variance) propagates NaN.
func dotCorr(a, b []float64) float64 {
	if math.IsNaN(a[0]) || math.IsNaN(b[0]) {
		return math.NaN()
	}
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	// Clamp rounding excursions outside [-1, 1].
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return dot
}
