package pcor

import (
	"math"
	"testing"

	"sprint/internal/rng"
)

// refPearson is an independent two-pass Pearson correlation.
func refPearson(a, b []float64) float64 {
	var sa, sb float64
	n := 0
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		sa += a[i]
		sb += b[i]
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var num, da, db float64
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	if da == 0 || db == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(da*db)
}

func randMatrix(rows, cols int, seed uint64) [][]float64 {
	src := rng.New(seed)
	x := make([][]float64, rows)
	for i := range x {
		x[i] = make([]float64, cols)
		for j := range x[i] {
			x[i][j] = src.NormFloat64()
		}
	}
	return x
}

func TestPcorMatchesReference(t *testing.T) {
	x := randMatrix(12, 20, 5)
	res, err := Pcor(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x {
			want := refPearson(x[i], x[j])
			got := res.Matrix[i][j]
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("corr(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestPcorProperties(t *testing.T) {
	x := randMatrix(10, 15, 9)
	res, err := Pcor(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		// Diagonal exactly 1 (self-correlation of finite-variance rows).
		if math.Abs(res.Matrix[i][i]-1) > 1e-12 {
			t.Errorf("corr(%d,%d) = %v, want 1", i, i, res.Matrix[i][i])
		}
		for j := range x {
			// Symmetry and range.
			if res.Matrix[i][j] != res.Matrix[j][i] {
				t.Errorf("matrix not symmetric at (%d,%d)", i, j)
			}
			if v := res.Matrix[i][j]; v < -1 || v > 1 {
				t.Errorf("corr(%d,%d) = %v outside [-1,1]", i, j, v)
			}
		}
	}
}

func TestPcorProcessCountInvariance(t *testing.T) {
	x := randMatrix(9, 10, 13)
	base, err := Pcor(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{2, 3, 5, 9, 12} {
		res, err := Pcor(x, np)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		for i := range x {
			for j := range x {
				if base.Matrix[i][j] != res.Matrix[i][j] {
					t.Fatalf("np=%d: corr(%d,%d) differs from serial", np, i, j)
				}
			}
		}
	}
}

func TestPcorConstantRowGivesNaN(t *testing.T) {
	x := [][]float64{
		{1, 2, 3, 4},
		{5, 5, 5, 5}, // zero variance
	}
	res, err := Pcor(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Matrix[0][1]) || !math.IsNaN(res.Matrix[1][1]) {
		t.Errorf("constant-row correlations = %v, want NaN", res.Matrix[1])
	}
	if res.Matrix[0][0] != 1 {
		t.Errorf("corr(0,0) = %v", res.Matrix[0][0])
	}
}

func TestPcorPerfectCorrelations(t *testing.T) {
	x := [][]float64{
		{1, 2, 3, 4, 5},
		{2, 4, 6, 8, 10},   // +1
		{5, 4, 3, 2, 1},    // -1
		{1.5, 0, 7, -2, 3}, // something else
	}
	res, err := Pcor(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Matrix[0][1]-1) > 1e-12 {
		t.Errorf("corr(0,1) = %v, want 1", res.Matrix[0][1])
	}
	if math.Abs(res.Matrix[0][2]+1) > 1e-12 {
		t.Errorf("corr(0,2) = %v, want -1", res.Matrix[0][2])
	}
}

func TestPcorValidation(t *testing.T) {
	if _, err := Pcor(nil, 2); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := Pcor([][]float64{{1, 2}, {1}}, 2); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Pcor([][]float64{{1, 2}}, 0); err == nil {
		t.Error("nprocs=0 accepted")
	}
}

func BenchmarkPcor100x76(b *testing.B) {
	x := randMatrix(100, 76, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pcor(x, 4); err != nil {
			b.Fatal(err)
		}
	}
}
