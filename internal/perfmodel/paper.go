package perfmodel

// The measured values published in the paper, transcribed from Tables I–VI.
// They serve two purposes: calibration targets for the analytic model, and
// the "paper" column of every side-by-side comparison in EXPERIMENTS.md and
// cmd/benchtables.  The tables report minimum timings over five runs.

// PaperRow is one row of Tables I–V.
type PaperRow struct {
	Procs                          int
	Pre, Bcast, Data, Kernel, PVal float64
	Speedup, SpeedupKernel         float64
}

// Profile repackages the section columns.
func (r PaperRow) Profile() Profile {
	return Profile{Pre: r.Pre, Bcast: r.Bcast, Data: r.Data, Kernel: r.Kernel, PVal: r.PVal}
}

// PaperTable returns the published rows for the named platform (the Name
// field of a Platform), or nil if unknown.
func PaperTable(name string) []PaperRow {
	return paperTables[name]
}

var paperTables = map[string][]PaperRow{
	// Table I: Profile of pmaxT implementation (HECToR).
	"HECToR": {
		{1, 0.260, 0.001, 0.010, 795.600, 0.002, 1.00, 1.00},
		{2, 0.261, 0.004, 0.012, 406.204, 0.884, 1.95, 1.95},
		{4, 0.259, 0.009, 0.013, 207.776, 0.005, 3.82, 3.82},
		{8, 0.260, 0.013, 0.013, 104.169, 0.489, 7.58, 7.63},
		{16, 0.259, 0.015, 0.013, 51.931, 0.713, 15.03, 15.32},
		{32, 0.259, 0.017, 0.013, 25.993, 0.784, 29.40, 30.60},
		{64, 0.259, 0.020, 0.013, 13.028, 0.611, 57.11, 61.06},
		{128, 0.259, 0.023, 0.013, 6.516, 0.662, 106.48, 122.09},
		{256, 0.260, 0.024, 0.013, 3.257, 0.611, 190.99, 244.27},
		{512, 0.260, 0.028, 0.013, 1.633, 0.606, 313.09, 487.20},
	},
	// Table II: Profile of pmaxT implementation (ECDF).
	"ECDF": {
		{1, 0.157, 0.000, 0.003, 467.273, 0.000, 1.00, 1.00},
		{2, 0.163, 0.002, 0.003, 234.848, 0.000, 1.99, 1.99},
		{4, 0.162, 0.003, 0.004, 123.174, 0.000, 3.79, 3.79},
		{8, 0.159, 0.004, 0.005, 79.576, 1.217, 5.77, 5.87},
		{16, 0.158, 0.032, 0.005, 39.467, 1.224, 11.43, 11.84},
		{32, 0.164, 0.072, 0.005, 19.862, 1.235, 21.91, 23.53},
		{64, 0.157, 0.072, 0.005, 9.935, 1.297, 40.77, 47.03},
		{128, 0.162, 0.086, 0.007, 5.813, 1.304, 63.40, 80.38},
	},
	// Table III: Profile of pmaxT implementation (Amazon EC2).
	"Amazon EC2": {
		{1, 0.272, 0.000, 0.006, 539.074, 0.000, 1.00, 1.00},
		{2, 0.271, 0.004, 0.009, 291.514, 0.005, 1.84, 1.84},
		{4, 0.273, 0.011, 0.014, 187.342, 0.043, 2.87, 2.87},
		{8, 0.278, 0.880, 0.014, 90.806, 2.574, 5.70, 5.93},
		{16, 0.268, 1.735, 0.022, 43.756, 4.983, 10.62, 12.32},
		{32, 0.270, 2.917, 0.019, 22.308, 3.834, 18.37, 24.16},
	},
	// Table IV: Profile of pmaxT implementation (Ness).
	"Ness": {
		{1, 0.393, 0.000, 0.010, 852.223, 0.000, 1.00, 1.00},
		{2, 0.467, 0.007, 0.012, 443.050, 0.001, 1.92, 1.92},
		{4, 0.398, 0.029, 0.012, 216.595, 0.001, 3.93, 3.93},
		{8, 0.394, 0.032, 0.014, 117.317, 0.001, 7.24, 7.26},
		{16, 0.436, 0.109, 0.019, 84.442, 0.001, 10.03, 10.09},
	},
	// Table V: Profile of pmaxT implementation (Quad Core desktop).
	"Quad-core desktop": {
		{1, 0.140, 0.000, 0.007, 566.638, 0.001, 1.00, 1.00},
		{2, 0.136, 0.003, 0.008, 282.623, 0.085, 2.00, 2.00},
		{4, 0.135, 0.010, 0.013, 167.439, 0.705, 3.37, 3.38},
	},
}

// PaperVIRow is one row of Table VI: elapsed pmaxT time on 256 HECToR
// cores for large datasets and high permutation counts, against the
// paper's extrapolated serial R run time.
type PaperVIRow struct {
	Genes, Samples int
	SizeMB         float64
	Perms          int64
	TotalSec       float64 // measured pmaxT elapsed, 256 processes
	SerialSec      float64 // paper's serial approximation
}

// PaperTableVI returns the published Table VI rows.
func PaperTableVI() []PaperVIRow {
	return []PaperVIRow{
		{36612, 76, 21.22, 500000, 73.18, 20750},
		{36612, 76, 21.22, 1000000, 146.64, 41500},
		{36612, 76, 21.22, 2000000, 290.22, 83000},
		{73224, 76, 42.45, 500000, 148.46, 35000},
		{73224, 76, 42.45, 1000000, 294.61, 70000},
		{73224, 76, 42.45, 2000000, 591.48, 140000},
	}
}

// TableVIProcs is the process count used throughout Table VI.
const TableVIProcs = 256

// SerialROverhead is the calibrated slowdown of the original serial R
// mt.maxT relative to the pmaxT C kernel rate on the same hardware; it
// converts modelled kernel work into the paper's "serial run time
// (approximation)" column.  Calibrated from the two Table VI datasets
// (1.30 and 1.10 respectively); 1.20 splits the difference within ±9%.
const SerialROverhead = 1.20

// SerialApprox models the paper's serial-R extrapolation for a matrix of
// the given rows and permutation count on the given platform.
func (pl Platform) SerialApprox(rows int, b int64) float64 {
	return pl.T1Kernel * (float64(rows) / RefGenes) * (float64(b) / RefPerms) * SerialROverhead
}
