package perfmodel

import (
	"math"
	"testing"
)

func TestStages(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 512: 9}
	for p, want := range cases {
		if got := stages(p); got != want {
			t.Errorf("stages(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestSplitStages(t *testing.T) {
	cases := []struct{ p, c, mem, net int }{
		{1, 8, 0, 0}, {8, 8, 3, 0}, {16, 8, 3, 1}, {512, 16, 4, 5},
		{4, 16, 2, 0}, {32, 4, 2, 3},
	}
	for _, tc := range cases {
		mem, net := splitStages(tc.p, tc.c)
		if mem != tc.mem || net != tc.net {
			t.Errorf("splitStages(%d,%d) = (%d,%d), want (%d,%d)", tc.p, tc.c, mem, net, tc.mem, tc.net)
		}
	}
}

func TestCatalogComplete(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("platform count = %d, want 5", len(all))
	}
	wantMax := map[string]int{
		"HECToR": 512, "ECDF": 128, "Amazon EC2": 32, "Ness": 16, "Quad-core desktop": 4,
	}
	for _, pl := range all {
		if pl.MaxProcs != wantMax[pl.Name] {
			t.Errorf("%s MaxProcs = %d, want %d", pl.Name, pl.MaxProcs, wantMax[pl.Name])
		}
		if _, ok := ByName(pl.Name); !ok {
			t.Errorf("ByName(%q) failed", pl.Name)
		}
		if PaperTable(pl.Name) == nil {
			t.Errorf("no paper table for %q", pl.Name)
		}
	}
	if _, ok := ByName("Blue Gene"); ok {
		t.Error("ByName accepted unknown platform")
	}
}

func TestProcCounts(t *testing.T) {
	pl := HECToR()
	counts := pl.ProcCounts()
	if len(counts) != 10 || counts[0] != 1 || counts[9] != 512 {
		t.Errorf("HECToR ProcCounts = %v", counts)
	}
}

func TestSingleProcessMatchesPaperBaseline(t *testing.T) {
	// At p = 1 the model must reproduce the measured baseline almost
	// exactly: T1Kernel and PreProc are read straight off the tables.
	for _, pl := range All() {
		row := PaperTable(pl.Name)[0]
		prof := pl.Predict(1)
		if math.Abs(prof.Kernel-row.Kernel) > 1e-9 {
			t.Errorf("%s: model T1 kernel %.3f != paper %.3f", pl.Name, prof.Kernel, row.Kernel)
		}
		if math.Abs(prof.Pre-row.Pre) > 0.08 {
			t.Errorf("%s: model pre %.3f far from paper %.3f", pl.Name, prof.Pre, row.Pre)
		}
		if prof.Bcast != 0 {
			t.Errorf("%s: broadcast cost at p=1 should be 0, got %v", pl.Name, prof.Bcast)
		}
	}
}

// TestKernelWithinTolerance checks every kernel cell of Tables I–V against
// the model.  The tables are minima over five runs on shared machines, so
// we accept 15% relative error per cell.
func TestKernelWithinTolerance(t *testing.T) {
	for _, pl := range All() {
		for _, row := range PaperTable(pl.Name) {
			got := pl.Predict(row.Procs).Kernel
			rel := math.Abs(got-row.Kernel) / row.Kernel
			if rel > 0.15 {
				t.Errorf("%s p=%d: model kernel %.2f vs paper %.2f (%.0f%% off)",
					pl.Name, row.Procs, got, row.Kernel, rel*100)
			}
		}
	}
}

// TestTotalSpeedupShape asserts the qualitative claims of Section 4.4 hold
// in the model: who scales well, and where each platform's knee falls.
func TestTotalSpeedupShape(t *testing.T) {
	// HECToR: near-optimal far out; total speedup at 512 within [250, 512]
	// and clearly below the kernel speedup (collective overheads).
	h := HECToR()
	tot, ker := h.Speedup(512)
	if tot < 250 || tot > 512 {
		t.Errorf("HECToR total speedup at 512 = %.0f, want near paper's 313", tot)
	}
	if ker <= tot {
		t.Errorf("HECToR kernel speedup %.0f not above total %.0f at 512", ker, tot)
	}

	// ECDF: memory-bus knee between 4 and 8 — efficiency drops by > 15%.
	e := ECDF()
	eff4, _ := e.Speedup(4)
	eff8, _ := e.Speedup(8)
	if eff4/4 < 0.90 {
		t.Errorf("ECDF efficiency at 4 = %.2f, should still be high", eff4/4)
	}
	if eff8/8 > 0.80 {
		t.Errorf("ECDF efficiency at 8 = %.2f, knee missing", eff8/8)
	}

	// EC2: knee at 2-4 and the worst total-vs-kernel divergence at 32.
	a := EC2()
	eff2, _ := a.Speedup(2)
	eff4a, _ := a.Speedup(4)
	if eff2/2 < 0.85 {
		t.Errorf("EC2 efficiency at 2 = %.2f, too pessimistic", eff2/2)
	}
	if eff4a/4 > 0.85 {
		t.Errorf("EC2 efficiency at 4 = %.2f, knee missing", eff4a/4)
	}
	tot32, ker32 := a.Speedup(32)
	if ker32-tot32 < 3 {
		t.Errorf("EC2 at 32: total %.1f vs kernel %.1f should diverge strongly", tot32, ker32)
	}

	// Ness: good to 8, NUMA penalty at 16 (speedup ~10, not ~15).
	n := Ness()
	tot8, _ := n.Speedup(8)
	tot16, _ := n.Speedup(16)
	if tot8 < 6.5 {
		t.Errorf("Ness speedup at 8 = %.1f, too low", tot8)
	}
	if tot16 > 12 {
		t.Errorf("Ness speedup at 16 = %.1f, NUMA penalty missing (paper: 10.03)", tot16)
	}

	// Quad-core: ~2x at 2, ~3.4x at 4.
	q := QuadCore()
	qt2, _ := q.Speedup(2)
	qt4, _ := q.Speedup(4)
	if math.Abs(qt2-2.0) > 0.1 {
		t.Errorf("quad-core speedup at 2 = %.2f, want ~2.0", qt2)
	}
	if qt4 < 3.0 || qt4 > 3.8 {
		t.Errorf("quad-core speedup at 4 = %.2f, want ~3.37", qt4)
	}
}

// TestSpeedupAgainstPaperColumns compares the model's speedup columns with
// the published ones at 20% tolerance.
func TestSpeedupAgainstPaperColumns(t *testing.T) {
	for _, pl := range All() {
		for _, row := range PaperTable(pl.Name) {
			if row.Procs == 1 {
				continue
			}
			tot, ker := pl.Speedup(row.Procs)
			if rel := math.Abs(tot-row.Speedup) / row.Speedup; rel > 0.20 {
				t.Errorf("%s p=%d: total speedup %.2f vs paper %.2f (%.0f%% off)",
					pl.Name, row.Procs, tot, row.Speedup, rel*100)
			}
			if rel := math.Abs(ker-row.SpeedupKernel) / row.SpeedupKernel; rel > 0.20 {
				t.Errorf("%s p=%d: kernel speedup %.2f vs paper %.2f (%.0f%% off)",
					pl.Name, row.Procs, ker, row.SpeedupKernel, rel*100)
			}
		}
	}
}

// TestTableVIWithinTolerance: the modelled 256-process elapsed times for
// the exon-array datasets must track Table VI within 10%.
func TestTableVIWithinTolerance(t *testing.T) {
	h := HECToR()
	for _, row := range PaperTableVI() {
		got := h.PredictWorkload(row.Genes, row.Samples, row.Perms, TableVIProcs).Total()
		rel := math.Abs(got-row.TotalSec) / row.TotalSec
		if rel > 0.10 {
			t.Errorf("TableVI %dx%d B=%d: model %.2f vs paper %.2f (%.0f%% off)",
				row.Genes, row.Samples, row.Perms, got, row.TotalSec, rel*100)
		}
		serial := h.SerialApprox(row.Genes, row.Perms)
		if rel := math.Abs(serial-row.SerialSec) / row.SerialSec; rel > 0.12 {
			t.Errorf("TableVI %dx%d B=%d: serial approx %.0f vs paper %.0f (%.0f%% off)",
				row.Genes, row.Samples, row.Perms, serial, row.SerialSec, rel*100)
		}
	}
}

// TestTableVIScalingLaws: doubling the dataset size or the permutation
// count must roughly double the elapsed time (Section 4.4's observation).
func TestTableVIScalingLaws(t *testing.T) {
	h := HECToR()
	t1 := h.PredictWorkload(36612, 76, 500000, 256).Total()
	t2 := h.PredictWorkload(73224, 76, 500000, 256).Total()
	if r := t2 / t1; r < 1.85 || r > 2.2 {
		t.Errorf("doubling rows scales time by %.2f, want ~2", r)
	}
	t4 := h.PredictWorkload(36612, 76, 1000000, 256).Total()
	if r := t4 / t1; r < 1.9 || r > 2.1 {
		t.Errorf("doubling perms scales time by %.2f, want ~2", r)
	}
}

func TestKernelMonotoneInProcs(t *testing.T) {
	for _, pl := range All() {
		prev := math.Inf(1)
		for _, p := range pl.ProcCounts() {
			k := pl.Predict(p).Kernel
			if k >= prev {
				t.Errorf("%s: kernel time not decreasing at p=%d (%.2f >= %.2f)", pl.Name, p, k, prev)
			}
			prev = k
		}
	}
}

func TestPredictPanicsOnBadProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Predict(0) did not panic")
		}
	}()
	HECToR().Predict(0)
}

func TestProfileTotal(t *testing.T) {
	p := Profile{Pre: 1, Bcast: 2, Data: 3, Kernel: 4, PVal: 5}
	if p.Total() != 15 {
		t.Errorf("Total = %v", p.Total())
	}
	row := PaperRow{Procs: 2, Pre: 1, Bcast: 2, Data: 3, Kernel: 4, PVal: 5}
	if row.Profile().Total() != 15 {
		t.Errorf("PaperRow.Profile().Total() = %v", row.Profile().Total())
	}
}
