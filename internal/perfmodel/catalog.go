package perfmodel

// The five benchmark platforms of Section 4.1, with model parameters
// calibrated against the published rows of Tables I–V.  Calibration was by
// hand: T1Kernel and PreProc are read straight off the p = 1 rows; the
// latency, contention and p-value parameters were tuned so that the
// modelled sections track the measured ones within the run-to-run noise
// the paper itself reports (its tables are minima over five runs on shared
// machines).  EXPERIMENTS.md lists the per-cell deltas.

// HECToR models the UK National Supercomputing Service: Cray XT4, 1416
// blades × four quad-core 2.3 GHz AMD Opteron sockets, SeaStar2
// interconnect.  Its signature in the paper: near-optimal scaling to 512
// processes with only mild total-vs-kernel divergence from collective
// overheads.
func HECToR() Platform {
	return Platform{
		Name:         "HECToR",
		Description:  "Cray XT4, 4x quad-core AMD Opteron 2.3 GHz per blade, SeaStar2 interconnect",
		MaxProcs:     512,
		CoresPerNode: 16,
		T1Kernel:     795.600,
		PreProc:      0.260,
		AlphaMem:     0.004,
		AlphaNet:     0.0035,
		DataC0:       0.010,
		DataC1:       0.0004,
		DataPerMB:    0.0004,
		Gamma:        0.048,
		CachePenalty: 0.064,
		PValBase:     0.620,
		PValOnset:    2,
	}
}

// ECDF models the Edinburgh Compute and Data Facility ("Eddie"): 128 IBM
// iDataPlex servers, each two quad-core Intel Westmere sockets sharing 16
// GB, Gigabit Ethernet.  Signature: a memory-bus knee between 4 and 8
// processes ("a node on the ECDF consists of two quadcores sharing
// memory"), then clean scaling to 128 with growing collective costs.
func ECDF() Platform {
	return Platform{
		Name:         "ECDF",
		Description:  "IBM iDataPlex cluster, 2x quad-core Intel Westmere per node, Gigabit Ethernet",
		MaxProcs:     128,
		CoresPerNode: 8,
		T1Kernel:     467.273,
		PreProc:      0.160,
		AlphaMem:     0.0012,
		AlphaNet:     0.022,
		DataC0:       0.003,
		DataC1:       0.0004,
		DataPerMB:    0.0004,
		Gamma:        0.050,
		BusPenalty:   0.33,
		BusThreshold: 0.50,
		PValBase:     1.250,
		PValOnset:    8,
	}
}

// EC2 models the Amazon Elastic Compute Cloud instance type used in the
// paper: 15 GB memory, 8 EC2 compute units as 4 virtual cores, 64-bit,
// connected by a virtualised Ethernet with "no guarantees on bandwidth or
// latency".  Signature: an early speed-up knee at 2–4 processes and
// rapidly growing broadcast/p-value sections once more instances join.
func EC2() Platform {
	return Platform{
		Name:         "Amazon EC2",
		Description:  "EC2 instances, 4 virtual cores (8 compute units) each, virtualised Ethernet",
		MaxProcs:     32,
		CoresPerNode: 4,
		T1Kernel:     539.074,
		PreProc:      0.270,
		AlphaMem:     0.004,
		AlphaNet:     0.950,
		DataC0:       0.006,
		DataC1:       0.002,
		DataPerMB:    0.0015,
		Gamma:        0.040,
		BusPenalty:   0.40,
		BusThreshold: 0.25,
		PValBase:     0.900,
		PValOnset:    8,
		PValNet:      1.100,
	}
}

// Ness models EPCC's internal SMP: 16 dual-core 2.6 GHz AMD Opteron
// processors in two 16-core boxes, memory as the interconnect.  Signature:
// good scaling to 8, then a NUMA penalty at 16 as ranks span boards
// (kernel speedup drops to ~10).
func Ness() Platform {
	return Platform{
		Name:         "Ness",
		Description:  "EPCC SMP, 16 dual-core AMD Opteron 2.6 GHz in two 16-core boxes",
		MaxProcs:     16,
		CoresPerNode: 8,
		T1Kernel:     852.223,
		PreProc:      0.400,
		AlphaMem:     0.007,
		AlphaNet:     0.080,
		DataC0:       0.010,
		DataC1:       0.002,
		DataPerMB:    0.0015,
		Gamma:        0.030,
		BusPenalty:   0.07,
		BusThreshold: 0.50,
		NUMAPenalty:  0.95,
		PValLinear:   0.0001,
		PValOnset:    1 << 30, // flat section never observed
	}
}

// QuadCore models the Intel Core2 Quad Q9300 desktop with 3 GB of memory:
// the machine a biostatistician actually owns.  Signature: perfect
// speed-up at 2, ~3.4x at 4 as the shared memory bus saturates.
func QuadCore() Platform {
	return Platform{
		Name:         "Quad-core desktop",
		Description:  "Intel Core2 Quad Q9300 desktop, 3 GB RAM",
		MaxProcs:     4,
		CoresPerNode: 4,
		T1Kernel:     566.638,
		PreProc:      0.140,
		AlphaMem:     0.004,
		DataC0:       0.007,
		DataC1:       0.002,
		DataPerMB:    0.002,
		BusPenalty:   0.18,
		BusThreshold: 0.50,
		PValLinear:   0.220,
		PValOnset:    1 << 30,
	}
}

// All returns the five platforms in the paper's table order (Tables I–V).
func All() []Platform {
	return []Platform{HECToR(), ECDF(), EC2(), Ness(), QuadCore()}
}

// ByName finds a platform by its paper name (case-sensitive).
func ByName(name string) (Platform, bool) {
	for _, pl := range All() {
		if pl.Name == name {
			return pl, true
		}
	}
	return Platform{}, false
}
