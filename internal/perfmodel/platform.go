// Package perfmodel is the hardware substitute for the paper's five
// benchmark platforms (HECToR, ECDF, Amazon EC2, Ness and a quad-core
// desktop).  We cannot run on a 2010 Cray XT4 or the original EC2
// instances, so Tables I–V, Figure 3 and Table VI are regenerated from an
// analytic performance model with per-platform parameters calibrated by
// hand against the paper's published rows (see DESIGN.md §2).
//
// The model decomposes the run exactly as the paper's profile does:
//
//	pre-processing      constant master-side cost
//	broadcast params    binomial-tree latency: stages within a node cost
//	                    AlphaMem, stages crossing nodes cost AlphaNet
//	create data         constant plus a small per-stage term plus a
//	                    bandwidth term proportional to the matrix size
//	main kernel         T1/p inflated by parallel inefficiency, memory-bus
//	                    contention once a node saturates, and (for SMP
//	                    boxes) a NUMA penalty when ranks span boxes
//	compute p-values    reduction cost keyed to off-node tree stages
//
// The interesting claims of the paper are about *shape* — near-optimal
// scaling on the Cray, a memory-bus knee at 4–8 processes on ECDF, a
// network knee at 2–4 on EC2, an SMP penalty at 16 on Ness, and ~3.4×
// speedup on a quad-core desktop — and those shapes fall out of the
// parameters rather than being tabulated.
package perfmodel

import (
	"fmt"
	"math"
)

// Profile holds modelled section times in seconds for one process count,
// matching the columns of Tables I–V.
type Profile struct {
	Pre    float64 // Pre processing
	Bcast  float64 // Broadcast parameters
	Data   float64 // Create data
	Kernel float64 // Main kernel
	PVal   float64 // Compute p-values
}

// Total returns the summed section time.
func (p Profile) Total() float64 {
	return p.Pre + p.Bcast + p.Data + p.Kernel + p.PVal
}

// Platform is a calibrated machine model.
type Platform struct {
	// Name is the paper's platform name.
	Name string
	// Description summarises the hardware as specified in Section 4.1.
	Description string
	// MaxProcs is the largest process count benchmarked in the paper.
	MaxProcs int
	// CoresPerNode is the number of ranks that share one memory bus; tree
	// stages with a stride below this are intra-node.
	CoresPerNode int

	// T1Kernel is the measured single-process main-kernel time (seconds)
	// for the reference workload (6102×76, B = 150000).
	T1Kernel float64
	// PreProc is the constant pre-processing cost.
	PreProc float64

	// AlphaMem and AlphaNet are per-tree-stage latencies (seconds) for
	// intra-node and inter-node hops of small-message collectives.
	AlphaMem, AlphaNet float64

	// DataC0/DataC1 shape the create-data section: C0 + C1 per tree
	// stage for the reference matrix.  DataPerMB adds a bandwidth term
	// per matrix megabyte per stage for larger inputs (Table VI).
	DataC0, DataC1, DataPerMB float64

	// Gamma is the asymptotic parallel inefficiency of the kernel
	// (load imbalance, per-permutation bookkeeping).
	Gamma float64
	// BusPenalty and BusThreshold model memory-bus contention: the
	// kernel slows by up to BusPenalty as node occupancy rises beyond
	// BusThreshold.
	BusPenalty, BusThreshold float64
	// NUMAPenalty models SMP boxes whose ranks spill across boards
	// (Ness): kernel inflation factor scaled by the spilled fraction.
	NUMAPenalty float64
	// CachePenalty inflates the kernel for working sets much larger than
	// the reference matrix (Table VI's exon-array datasets).
	CachePenalty float64

	// PValBase is the flat p-value-section cost once more than
	// PValOnset processes participate; PValNet adds cost per off-node
	// tree stage (EC2's jittery virtual network); PValLinear adds cost
	// per extra process (small SMPs where the master's gather is
	// serialised on the memory bus).
	PValBase   float64
	PValOnset  int
	PValNet    float64
	PValLinear float64
}

// Reference workload constants (Tables I–V): 6102 genes × 76 samples,
// 150000 permutations.
const (
	RefGenes   = 6102
	RefSamples = 76
	RefPerms   = 150000
)

// stages returns ceil(log2 p), the depth of a binomial tree over p ranks.
func stages(p int) int {
	s := 0
	for 1<<uint(s) < p {
		s++
	}
	return s
}

// splitStages partitions the tree stages of a p-rank collective into
// intra-node and inter-node hops given c cores per node.
func splitStages(p, c int) (mem, net int) {
	total := stages(p)
	memMax := stages(c)
	if total <= memMax {
		return total, 0
	}
	return memMax, total - memMax
}

// occupancy returns the filled fraction of one node at process count p.
func (pl Platform) occupancy(p int) float64 {
	if p >= pl.CoresPerNode {
		return 1
	}
	return float64(p) / float64(pl.CoresPerNode)
}

// kernelFactor returns the multiplicative inflation of the ideal T1/p
// kernel time at process count p for a matrix of the given row count.
func (pl Platform) kernelFactor(p, rows int) float64 {
	f := 1 + pl.Gamma*(1-1/float64(p))
	if occ := pl.occupancy(p); occ > pl.BusThreshold && pl.BusPenalty > 0 {
		f += pl.BusPenalty * (occ - pl.BusThreshold) / (1 - pl.BusThreshold)
	}
	if pl.NUMAPenalty > 0 && p > pl.CoresPerNode {
		f += pl.NUMAPenalty * (1 - float64(pl.CoresPerNode)/float64(p))
	}
	if pl.CachePenalty > 0 && rows > RefGenes {
		grow := math.Min(1, float64(rows-RefGenes)/float64(5*RefGenes))
		f += pl.CachePenalty * grow
	}
	return f
}

// Predict models the reference-workload profile of Tables I–V at process
// count p.
func (pl Platform) Predict(p int) Profile {
	return pl.PredictWorkload(RefGenes, RefSamples, RefPerms, p)
}

// PredictWorkload models the profile for an arbitrary matrix and
// permutation count at process count p.  Kernel work scales linearly in
// rows and permutations (the empirical behaviour reported in Section 4.3
// and Table VI).
func (pl Platform) PredictWorkload(rows, cols int, b int64, p int) Profile {
	if p < 1 {
		panic(fmt.Sprintf("perfmodel: process count %d", p))
	}
	mem, net := splitStages(p, pl.CoresPerNode)
	var prof Profile
	prof.Pre = pl.PreProc
	if p > 1 {
		prof.Bcast = float64(mem)*pl.AlphaMem + float64(net)*pl.AlphaNet
	}
	sizeMB := float64(rows) * float64(cols) * 8 / (1 << 20)
	prof.Data = pl.DataC0 + pl.DataC1*float64(stages(p)) +
		pl.DataPerMB*sizeMB*float64(stages(p))
	work := pl.T1Kernel * (float64(rows) / RefGenes) * (float64(b) / RefPerms) *
		(float64(cols) / RefSamples)
	prof.Kernel = work / float64(p) * pl.kernelFactor(p, rows)
	if p == 1 {
		prof.PVal = 0.002
		return prof
	}
	rowScale := float64(rows) / RefGenes // reduce vectors grow with genes
	if p >= pl.PValOnset {
		prof.PVal += pl.PValBase * rowScale
	}
	prof.PVal += pl.PValNet * float64(net) * rowScale
	prof.PVal += pl.PValLinear * float64(p-1) * rowScale
	return prof
}

// Speedup returns the modelled total-time and kernel-only speedups at p,
// the paper's last two table columns.
func (pl Platform) Speedup(p int) (total, kernel float64) {
	base := pl.Predict(1)
	at := pl.Predict(p)
	return base.Total() / at.Total(), base.Kernel / at.Kernel
}

// ProcCounts returns the process counts benchmarked in the paper for this
// platform: powers of two from 1 to MaxProcs.
func (pl Platform) ProcCounts() []int {
	var out []int
	for p := 1; p <= pl.MaxProcs; p *= 2 {
		out = append(out, p)
	}
	return out
}
