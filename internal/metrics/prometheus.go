package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// # HELP / # TYPE header per family, histogram buckets cumulative with a
// terminal +Inf bucket plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Group instances by family name, preserving a stable order.
	families := make(map[string][]*metric, len(r.order))
	names := make([]string, 0, len(r.order))
	for _, m := range r.order {
		if _, ok := families[m.name]; !ok {
			names = append(names, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		ms := families[name]
		if h, ok := help[name]; ok {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, strings.ReplaceAll(h, "\n", " "))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, ms[0].kind)
		for _, m := range ms {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&sb, "%s%s %d\n", name, m.labels, m.counter.Value())
			case kindGauge:
				fmt.Fprintf(&sb, "%s%s %d\n", name, m.labels, m.gauge.Value())
			case kindGaugeFunc:
				fmt.Fprintf(&sb, "%s%s %s\n", name, m.labels, formatFloat(m.fn()))
			case kindHistogram:
				writeHistogram(&sb, name, m.labels, m.hist)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogram renders one histogram instance: cumulative le-labelled
// buckets, +Inf, then _sum and _count.
func writeHistogram(sb *strings.Builder, name, labels string, h *Histogram) {
	cum, total := h.snapshotBuckets()
	for i, bound := range h.bounds {
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, withLabel(labels, "le", formatFloat(bound)), cum[i])
	}
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), total)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, labels, total)
}

// withLabel merges one extra label pair into an already-rendered label
// string ("" or "{...}").
func withLabel(rendered, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// formatFloat renders a float the exposition format accepts: shortest
// round-trip decimal, with the special values spelled Prometheus-style.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
