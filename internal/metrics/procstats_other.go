//go:build !linux

package metrics

// readOSStats is a no-op off Linux: RSS and CPU time stay zero, the
// runtime-sourced fields still populate.
func readOSStats(ps *ProcStats) {}
