package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-format exposition: comment and sample
// syntax, metric/label name grammar, TYPE declarations preceding their
// samples, no duplicate series, and histogram invariants (cumulative
// monotone buckets, a terminal +Inf bucket equal to _count).  It returns
// every problem found, empty when the exposition is clean.  The CI
// scrape step and the exposition tests share this checker.
func Lint(r io.Reader) []string {
	var problems []string
	addf := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := make(map[string]string)        // family -> declared type
	seen := make(map[string]int)            // full series (name+labels) -> line
	buckets := make(map[string][]bucketObs) // histogram series sans le -> buckets
	counts := make(map[string]float64)      // histogram _count series -> value

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			lintComment(line, n, types, addf)
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			addf(n, "malformed sample %q", line)
			continue
		}
		if !validMetricName(name) {
			addf(n, "invalid metric name %q", name)
		}
		for _, lp := range labels {
			if !validLabelName(lp.k) {
				addf(n, "invalid label name %q", lp.k)
			}
		}
		series := name + renderParsedLabels(labels)
		if prev, dup := seen[series]; dup {
			addf(n, "duplicate series %s (first at line %d)", series, prev)
		}
		seen[series] = n

		family := histogramFamily(name)
		if t, declared := types[family]; declared {
			if err := checkSuffix(name, family, t); err != "" {
				addf(n, "%s", err)
			}
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, rest, hasLE := splitLE(labels)
			if !hasLE {
				addf(n, "%s has no le label", name)
				continue
			}
			key := strings.TrimSuffix(name, "_bucket") + renderParsedLabels(rest)
			ub, err := parseBound(le)
			if err != nil {
				addf(n, "%s: bad le %q", name, le)
				continue
			}
			buckets[key] = append(buckets[key], bucketObs{ub: ub, count: value, line: n})
		case strings.HasSuffix(name, "_count"):
			key := strings.TrimSuffix(name, "_count") + renderParsedLabels(labels)
			counts[key] = value
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}

	// Histogram invariants, per series.
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		obs := buckets[k]
		sort.Slice(obs, func(i, j int) bool { return obs[i].ub < obs[j].ub })
		last := obs[len(obs)-1]
		if !isInf(last.ub) {
			problems = append(problems, fmt.Sprintf("histogram %s has no +Inf bucket", k))
		}
		for i := 1; i < len(obs); i++ {
			if obs[i].count < obs[i-1].count {
				problems = append(problems, fmt.Sprintf("histogram %s buckets not cumulative at le=%g", k, obs[i].ub))
			}
		}
		if c, ok := counts[k]; ok && isInf(last.ub) && last.count != c {
			problems = append(problems, fmt.Sprintf("histogram %s +Inf bucket %g != _count %g", k, last.count, c))
		}
	}
	return problems
}

type bucketObs struct {
	ub    float64
	count float64
	line  int
}

func isInf(v float64) bool { return math.IsInf(v, 1) }

func parseBound(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// lintComment validates # HELP / # TYPE lines and records declared types.
func lintComment(line string, n int, types map[string]string, addf func(int, string, ...any)) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return // free-form comment: allowed
	}
	if len(fields) < 3 {
		addf(n, "%s without a metric name", fields[1])
		return
	}
	name := fields[2]
	if !validMetricName(name) {
		addf(n, "%s for invalid metric name %q", fields[1], name)
	}
	if fields[1] == "TYPE" {
		if len(fields) < 4 {
			addf(n, "TYPE %s without a type", name)
			return
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			addf(n, "TYPE %s has unknown type %q", name, fields[3])
		}
		if _, dup := types[name]; dup {
			addf(n, "duplicate TYPE for %s", name)
		}
		types[name] = fields[3]
	}
}

// checkSuffix verifies a sample name belongs to its declared family: a
// histogram family may only emit _bucket/_sum/_count (or the bare name),
// counters and gauges only the bare name.
func checkSuffix(name, family, typ string) string {
	if name == family {
		return ""
	}
	if typ == "histogram" || typ == "summary" {
		switch strings.TrimPrefix(name, family) {
		case "_bucket", "_sum", "_count":
			return ""
		}
	}
	return fmt.Sprintf("sample %s does not match TYPE %s %s", name, family, typ)
}

// histogramFamily maps a sample name to the family its TYPE line would
// declare: strips the histogram series suffixes.
func histogramFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

type labelPair struct{ k, v string }

// parseSample splits one exposition sample line into name, labels and
// value.  Timestamps (a trailing integer) are accepted and ignored.
func parseSample(line string) (name string, labels []labelPair, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, false
		}
		var lerr bool
		labels, lerr = parseLabels(rest[i+1 : end])
		if lerr {
			return "", nil, 0, false
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", nil, 0, false
		}
		name = fields[0]
		rest = strings.TrimSpace(fields[1])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, false
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, false
	}
	if len(fields) == 2 { // optional timestamp
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, false
		}
	}
	return name, labels, v, true
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` respecting escapes.
func parseLabels(s string) ([]labelPair, bool) {
	var out []labelPair
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, true
		}
		k := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, true
		}
		i++
		var sb strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(s[i])
				}
			} else {
				sb.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return nil, true
		}
		i++ // closing quote
		out = append(out, labelPair{k: k, v: sb.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, true
			}
			i++
		}
	}
	return out, false
}

func splitLE(labels []labelPair) (le string, rest []labelPair, ok bool) {
	for _, lp := range labels {
		if lp.k == "le" {
			le, ok = lp.v, true
			continue
		}
		rest = append(rest, lp)
	}
	return le, rest, ok
}

func renderParsedLabels(labels []labelPair) string {
	if len(labels) == 0 {
		return ""
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].k < labels[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, lp := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", lp.k, lp.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
