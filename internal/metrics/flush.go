package metrics

import (
	"runtime"
	"sync"
	"time"
)

// Sample is one metric value inside a Snapshot.  Histograms flatten to
// their count, sum and the p50/p99 estimates — the operational digest;
// the full bucket vector stays on the /metrics scrape.
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"`
	// Histogram digest fields; zero for counters and gauges.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// ProcStats is the process/OS block of a snapshot: resident set, heap,
// GC, goroutines and CPU time, the Gost os_stats counterpart.
type ProcStats struct {
	RSSBytes       int64   `json:"rss_bytes"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	GCPauseTotalS  float64 `json:"gc_pause_total_s"`
	NumGC          uint32  `json:"num_gc"`
	Goroutines     int     `json:"goroutines"`
	CPUUserS       float64 `json:"cpu_user_s"`
	CPUSystemS     float64 `json:"cpu_system_s"`
}

// Snapshot is one interval-flushed view of the registry.
type Snapshot struct {
	At      time.Time `json:"at"`
	Proc    ProcStats `json:"proc"`
	Samples []Sample  `json:"samples"`
}

// Snapshot walks the registry and returns the current values, including
// the process stats.  It is a cold-path operation (the flusher and the
// stats endpoint call it); hot-path handles are untouched.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	order := make([]*metric, len(r.order))
	copy(order, r.order)
	r.mu.Unlock()

	snap := &Snapshot{At: time.Now(), Proc: readProcStats()}
	snap.Samples = make([]Sample, 0, len(order))
	for _, m := range order {
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind.String()}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.counter.Value())
		case kindGauge:
			s.Value = float64(m.gauge.Value())
		case kindGaugeFunc:
			s.Value = m.fn()
		case kindHistogram:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			s.P50 = m.hist.Quantile(0.50)
			s.P99 = m.hist.Quantile(0.99)
			s.Value = s.Sum
		}
		snap.Samples = append(snap.Samples, s)
	}
	return snap
}

// readProcStats collects the process block: runtime stats portably, RSS
// and CPU time from the OS where available (zero elsewhere).
func readProcStats() ProcStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ps := ProcStats{
		HeapAllocBytes: ms.HeapAlloc,
		GCPauseTotalS:  float64(ms.PauseTotalNs) / 1e9,
		NumGC:          ms.NumGC,
		Goroutines:     runtime.NumGoroutine(),
	}
	readOSStats(&ps)
	return ps
}

// RegisterProcessMetrics exposes the process block as gauge families on
// the registry, so the /metrics scrape carries them alongside the
// service metrics.
func RegisterProcessMetrics(r *Registry) {
	r.Help("process_resident_memory_bytes", "Resident set size in bytes.")
	r.GaugeFunc("process_resident_memory_bytes", func() float64 {
		var ps ProcStats
		readOSStats(&ps)
		return float64(ps.RSSBytes)
	})
	r.Help("process_cpu_seconds_total", "Total user and system CPU time in seconds.")
	r.GaugeFunc("process_cpu_seconds_total", func() float64 {
		var ps ProcStats
		readOSStats(&ps)
		return ps.CPUUserS + ps.CPUSystemS
	})
	r.Help("go_goroutines", "Number of live goroutines.")
	r.GaugeFunc("go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	r.Help("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	r.GaugeFunc("go_heap_alloc_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.Help("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time in seconds.")
	r.GaugeFunc("go_gc_pause_seconds_total", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
}

// Flusher drives interval snapshots into a sink — the Gost buffered-
// flush loop.  Stop flushes one final snapshot synchronously, so no
// samples recorded before Stop are lost: the shutdown path calls Stop
// and then inspects or emits the final snapshot it returns.
type Flusher struct {
	reg  *Registry
	sink func(*Snapshot)

	mu     sync.Mutex
	stopC  chan struct{}
	doneC  chan struct{}
	closed bool
}

// NewFlusher starts a flusher emitting a snapshot to sink every
// interval.  interval <= 0 disables the periodic loop (Stop still emits
// the final snapshot).  sink runs on the flusher goroutine (or the Stop
// caller, for the final one) and must not block indefinitely.
func NewFlusher(reg *Registry, interval time.Duration, sink func(*Snapshot)) *Flusher {
	f := &Flusher{reg: reg, sink: sink, stopC: make(chan struct{}), doneC: make(chan struct{})}
	if interval > 0 {
		go f.loop(interval)
	} else {
		close(f.doneC)
	}
	return f
}

func (f *Flusher) loop(interval time.Duration) {
	defer close(f.doneC)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			f.sink(f.reg.Snapshot())
		case <-f.stopC:
			return
		}
	}
}

// Stop halts the periodic loop, takes one final snapshot, hands it to
// the sink and returns it.  Safe to call more than once; later calls
// only return a fresh snapshot without re-invoking the sink.
func (f *Flusher) Stop() *Snapshot {
	f.mu.Lock()
	already := f.closed
	f.closed = true
	if !already {
		close(f.stopC)
	}
	f.mu.Unlock()
	<-f.doneC
	snap := f.reg.Snapshot()
	if !already {
		f.sink(snap)
	}
	return snap
}
