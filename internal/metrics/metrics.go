// Package metrics is pmaxtd's buffered metrics core: lock-cheap sharded
// counters, gauges and fixed-bucket latency histograms behind a named
// registry, snapshotted on an interval and exported in the Prometheus
// text exposition format.
//
// The design follows the Gost "buffered counts" shape: the hot path only
// ever touches pre-registered metric handles with atomic operations — no
// map lookups, no locks, no allocations — while aggregation (snapshots,
// percentile estimation, the /metrics scrape) walks the registry cold.
// Counters are striped across cache-line-padded shards indexed by a
// per-P cheap random, so a worker pool hammering one counter does not
// serialise on a single cache line.
//
// Identity is (name, sorted label pairs).  Handles are get-or-create:
// asking for the same identity twice returns the same handle, so layers
// can share a registry without coordinating registration order.  Callers
// on hot paths must hold their handles rather than re-resolving them.
package metrics

import (
	"fmt"
	randv2 "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// nShards stripes counter updates.  8 shards × 64-byte padding keeps the
// worst case (every P on one counter) off a single cache line while
// costing 512 bytes per counter — counters are few and long-lived.
const nShards = 8

// pad64 is one cache-line-padded int64 shard.
type pad64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter.  Add is safe
// for any number of concurrent callers and never allocates.
type Counter struct {
	shards [nShards]pad64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	// rand/v2's top-level generators are per-P and lock-free: the index
	// costs a few nanoseconds and spreads contending writers.
	c.shards[randv2.Uint32()&(nShards-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous int64 value (queue depth, bytes resident).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates the exposition type of a metric family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered instance: a name, its rendered label string
// ("" or `{k="v",...}`) and exactly one live handle.
type metric struct {
	name   string
	labels string // rendered, sorted; "" when unlabelled
	kind   kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds the named metrics of one process.  Registration takes a
// lock; the returned handles are lock-free.  The zero value is NOT
// usable — call New.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by name + rendered labels
	order   []*metric          // registration order, for stable exposition
	help    map[string]string  // family name -> HELP text
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
	}
}

// Help sets the exposition HELP text of a metric family.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// renderLabels validates and renders "k1, v1, k2, v2, ..." pairs into
// the exposition label form, sorted by key so identity is order-free.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the exposition-format escapes for label
// values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

// lookup finds or creates the metric instance for (name, labels).  It
// panics when the identity is already registered under a different kind
// — that is a programming error, not an operational condition.
func (r *Registry) lookup(name string, k kind, labels []string) *metric {
	rendered := renderLabels(labels)
	key := name + rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("metrics: %s%s registered as %s, requested as %s", name, rendered, m.kind, k))
		}
		return m
	}
	m := &metric{name: name, labels: rendered, kind: k}
	r.metrics[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter for (name, labels), creating it on first
// use.  labels are "key, value" pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	m := r.lookup(name, kindCounter, labels)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	m := r.lookup(name, kindGauge, labels)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a callback gauge: fn is invoked at snapshot and
// scrape time.  fn must be safe for concurrent use and must not call
// back into the registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	m := r.lookup(name, kindGaugeFunc, labels)
	m.fn = fn
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds (nil selects DefLatencyBuckets) on first
// use.  Buckets of an existing histogram are not changed.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	m := r.lookup(name, kindHistogram, labels)
	if m.hist == nil {
		m.hist = newHistogram(buckets)
	}
	return m.hist
}
