//go:build linux

package metrics

import (
	"os"
	"strconv"
	"strings"
	"syscall"
)

// pageSize is resolved once; /proc/self/statm reports pages.
var pageSize = int64(os.Getpagesize())

// readOSStats fills the OS-sourced fields: RSS from /proc/self/statm,
// CPU time from getrusage.  Failures leave the fields zero — process
// stats must never take the service down.
func readOSStats(ps *ProcStats) {
	if b, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(b))
		if len(fields) >= 2 {
			if rssPages, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				ps.RSSBytes = rssPages * pageSize
			}
		}
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		ps.CPUUserS = tvSeconds(ru.Utime)
		ps.CPUSystemS = tvSeconds(ru.Stime)
	}
}

func tvSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
