package metrics

import (
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram upper bounds, in seconds:
// 100µs to 60s, a decade-split ladder wide enough for both sub-millisecond
// cache-hit jobs and minute-scale bulk sweeps.  The terminal +Inf bucket
// is implicit.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram: one atomic counter per
// bucket plus an atomic sum, so Observe is lock-free and allocation-free.
// Bucket bounds are upper bounds in seconds, Prometheus-style cumulative
// on export; the +Inf bucket is implicit (counts[len(bounds)]).
type Histogram struct {
	bounds []float64 // immutable after construction
	counts []atomic.Int64
	sumNs  atomic.Int64 // total observed time in nanoseconds
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	// Linear scan: the ladder is short (≤ ~20 bounds), fully resident and
	// branch-predictable — cheaper than binary search at this size.
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(seconds * 1e9))
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Sum returns the total of all observations, in seconds.
func (h *Histogram) Sum() float64 {
	return float64(h.sumNs.Load()) / 1e9
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank.  Values in the +Inf bucket
// report the last finite bound — an underestimate, which is the honest
// direction for an SLO readout.  Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: clamp to the last bound
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns the cumulative bucket counts aligned with
// bounds plus the +Inf total, for exposition.
func (h *Histogram) snapshotBuckets() (cum []int64, total int64) {
	cum = make([]int64, len(h.bounds)+1)
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running
}
