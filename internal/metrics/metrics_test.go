package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrentExact hammers one counter from many goroutines and
// requires the exact total: striping must lose nothing.
func TestCounterConcurrentExact(t *testing.T) {
	reg := New()
	c := reg.Counter("hits_total")
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	reg := New()
	g := reg.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

// TestHistogramConcurrentExact hammers a histogram and requires the exact
// observation count and bucket sums.
func TestHistogramConcurrentExact(t *testing.T) {
	reg := New()
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.005) // below first bound
				h.Observe(0.5)   // third bucket
				h.Observe(5)     // +Inf bucket
			}
		}()
	}
	wg.Wait()
	total := int64(goroutines * per * 3)
	if got := h.Count(); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
	cum, tot := h.snapshotBuckets()
	if tot != total {
		t.Fatalf("bucket total = %d, want %d", tot, total)
	}
	want := []int64{total / 3, total / 3, 2 * total / 3}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, cum[i], w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for i := 0; i < 90; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if q := h.Quantile(0.5); q > 0.1 {
		t.Fatalf("p50 = %g, want <= 0.1", q)
	}
	if q := h.Quantile(0.99); q < 1 || q > 10 {
		t.Fatalf("p99 = %g, want in (1, 10]", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", q)
	}
}

// TestHotPathZeroAlloc is the acceptance guard for the steady-state job
// path: every hot-path metric operation must allocate nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := New()
	c := reg.Counter("c_total", "class", "x")
	g := reg.Gauge("g")
	h := reg.Histogram("h_seconds", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(3 * time.Millisecond) }); n != 0 {
		t.Fatalf("Histogram.ObserveDuration allocates %v per op", n)
	}
}

// TestPrometheusGolden pins the exact exposition bytes: families sorted,
// HELP/TYPE headers, cumulative le buckets with +Inf, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	reg := New()
	reg.Help("requests_total", "Requests served.")
	reg.Counter("requests_total", "route", "/a").Add(3)
	reg.Counter("requests_total", "route", "/b").Inc()
	reg.Gauge("depth").Set(7)
	reg.GaugeFunc("drain_rate", func() float64 { return 2.5 })
	h := reg.Histogram("lat_seconds", []float64{0.1, 1}, "class", "x")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	const want = `# TYPE depth gauge
depth 7
# TYPE drain_rate gauge
drain_rate 2.5
# TYPE lat_seconds histogram
lat_seconds_bucket{class="x",le="0.1"} 1
lat_seconds_bucket{class="x",le="1"} 2
lat_seconds_bucket{class="x",le="+Inf"} 3
lat_seconds_sum{class="x"} 5.55
lat_seconds_count{class="x"} 3
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{route="/a"} 3
requests_total{route="/b"} 1
`
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
	if problems := Lint(strings.NewReader(sb.String())); len(problems) != 0 {
		t.Fatalf("lint of own exposition: %v", problems)
	}
}

// TestLintCatchesBadExposition proves the linter is not a rubber stamp.
func TestLintCatchesBadExposition(t *testing.T) {
	cases := map[string]string{
		"bad name":           "9bad_metric 1\n",
		"bad value":          "m 1.2.3\n",
		"duplicate series":   "m 1\nm 2\n",
		"unknown type":       "# TYPE m sparkline\nm 1\n",
		"missing inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-monotone":       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"reserved label":     "m{__secret=\"x\"} 1\n",
	}
	for name, text := range cases {
		if problems := Lint(strings.NewReader(text)); len(problems) == 0 {
			t.Errorf("%s: lint accepted %q", name, text)
		}
	}
}

func TestLabelIdentityOrderFree(t *testing.T) {
	reg := New()
	a := reg.Counter("m", "x", "1", "y", "2")
	b := reg.Counter("m", "y", "2", "x", "1")
	if a != b {
		t.Fatal("same labels in different order produced distinct handles")
	}
}

// TestFlusherNoLostSamples asserts the shutdown guarantee: counts
// recorded before Stop all appear in the final snapshot, exactly once,
// whatever the interval was doing concurrently.
func TestFlusherNoLostSamples(t *testing.T) {
	reg := New()
	c := reg.Counter("work_total")

	var mu sync.Mutex
	var flushes []*Snapshot
	f := NewFlusher(reg, time.Millisecond, func(s *Snapshot) {
		mu.Lock()
		flushes = append(flushes, s)
		mu.Unlock()
	})

	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	final := f.Stop()

	sample := func(s *Snapshot, name string) *Sample {
		for i := range s.Samples {
			if s.Samples[i].Name == name {
				return &s.Samples[i]
			}
		}
		return nil
	}
	got := sample(final, "work_total")
	if got == nil || got.Value != goroutines*per {
		t.Fatalf("final snapshot work_total = %+v, want %d", got, goroutines*per)
	}
	mu.Lock()
	n := len(flushes)
	last := flushes[n-1]
	mu.Unlock()
	if n < 1 {
		t.Fatal("sink never invoked")
	}
	if s := sample(last, "work_total"); s == nil || s.Value != goroutines*per {
		t.Fatalf("last sunk snapshot = %+v, want the final one", s)
	}
	// Idempotent: a second Stop returns a snapshot but does not re-sink.
	f.Stop()
	mu.Lock()
	if len(flushes) != n {
		t.Fatalf("second Stop re-invoked the sink (%d -> %d)", n, len(flushes))
	}
	mu.Unlock()
}

// TestFlusherNoInterval covers the -metrics-interval 0 shape: no loop,
// but Stop still sinks the final snapshot.
func TestFlusherNoInterval(t *testing.T) {
	reg := New()
	reg.Counter("x_total").Add(5)
	sunk := 0
	f := NewFlusher(reg, 0, func(s *Snapshot) { sunk++ })
	snap := f.Stop()
	if sunk != 1 {
		t.Fatalf("sink invoked %d times, want 1", sunk)
	}
	if len(snap.Samples) != 1 || snap.Samples[0].Value != 5 {
		t.Fatalf("final snapshot %+v", snap.Samples)
	}
}

func TestSnapshotProcStats(t *testing.T) {
	reg := New()
	snap := reg.Snapshot()
	if snap.Proc.Goroutines < 1 {
		t.Fatalf("goroutines = %d", snap.Proc.Goroutines)
	}
	if snap.Proc.HeapAllocBytes == 0 {
		t.Fatal("heap alloc = 0")
	}
}

func TestRegisterProcessMetricsExposition(t *testing.T) {
	reg := New()
	RegisterProcessMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"process_cpu_seconds_total", "go_goroutines", "go_heap_alloc_bytes"} {
		if !strings.Contains(sb.String(), "# TYPE "+fam+" gauge") {
			t.Errorf("exposition missing %s", fam)
		}
	}
	if problems := Lint(strings.NewReader(sb.String())); len(problems) != 0 {
		t.Fatalf("lint: %v", problems)
	}
}
