package microarray

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDimensionsAndLabels(t *testing.T) {
	d, err := Generate(GenOptions{Genes: 100, Samples: 10, Classes: 2, DiffFraction: 0.1, EffectSize: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 100 || d.Cols() != 10 {
		t.Fatalf("dims = %dx%d", d.Rows(), d.Cols())
	}
	// Balanced two-class split.
	n1 := 0
	for _, l := range d.Labels {
		n1 += l
	}
	if n1 != 5 {
		t.Errorf("class 1 count = %d, want 5", n1)
	}
	// 10 differential genes flagged and named.
	nd := 0
	for i, diff := range d.Differential {
		if diff {
			nd++
			if !strings.HasSuffix(d.GeneNames[i], ".DE") {
				t.Errorf("differential gene %d not suffixed: %q", i, d.GeneNames[i])
			}
		}
	}
	if nd != 10 {
		t.Errorf("differential genes = %d, want 10", nd)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opt := GenOptions{Genes: 20, Samples: 8, Classes: 2, Seed: 42}
	a, _ := Generate(opt)
	b, _ := Generate(opt)
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatalf("same seed, different data at (%d,%d)", i, j)
			}
		}
	}
	opt.Seed = 43
	c, _ := Generate(opt)
	if a.X[0][0] == c.X[0][0] && a.X[1][1] == c.X[1][1] && a.X[2][2] == c.X[2][2] {
		t.Error("different seeds produced suspiciously identical data")
	}
}

func TestGenerateEffectDirection(t *testing.T) {
	d, _ := Generate(GenOptions{Genes: 50, Samples: 40, Classes: 2, DiffFraction: 0.2, EffectSize: 3, Seed: 7})
	// Differential genes must have higher class-1 means.
	for i := 0; i < 10; i++ {
		var m0, m1 float64
		for j, v := range d.X[i] {
			if d.Labels[j] == 0 {
				m0 += v
			} else {
				m1 += v
			}
		}
		if m1 <= m0 {
			t.Errorf("gene %d: class-1 mean not elevated", i)
		}
	}
}

func TestGeneratePairedLayout(t *testing.T) {
	d, err := Generate(GenOptions{Genes: 10, Samples: 12, Classes: 2, Paired: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		if d.Labels[2*j] != 0 || d.Labels[2*j+1] != 1 {
			t.Fatalf("pair %d labels = (%d,%d)", j, d.Labels[2*j], d.Labels[2*j+1])
		}
	}
}

func TestGenerateBlockedLayout(t *testing.T) {
	d, err := Generate(GenOptions{Genes: 10, Samples: 12, Classes: 3, Blocked: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		for tr := 0; tr < 3; tr++ {
			if d.Labels[b*3+tr] != tr {
				t.Fatalf("block %d labels wrong: %v", b, d.Labels[b*3:b*3+3])
			}
		}
	}
}

func TestGenerateMissingRate(t *testing.T) {
	d, _ := Generate(GenOptions{Genes: 200, Samples: 20, Classes: 2, MissingRate: 0.1, Seed: 5})
	missing := 0
	for _, row := range d.X {
		for _, v := range row {
			if math.IsNaN(v) {
				missing++
			}
		}
	}
	total := 200 * 20
	if missing < total/20 || missing > total/5 {
		t.Errorf("missing = %d of %d, want ~10%%", missing, total)
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []GenOptions{
		{Genes: 0, Samples: 10},
		{Genes: 10, Samples: 0},
		{Genes: 10, Samples: 7, Classes: 2, Paired: true},
		{Genes: 10, Samples: 10, Classes: 3, Blocked: true},
		{Genes: 10, Samples: 10, Classes: 2, Paired: true, Blocked: true},
		{Genes: 10, Samples: 10, DiffFraction: 1.5},
		{Genes: 10, Samples: 10, MissingRate: -0.1},
	}
	for i, opt := range cases {
		if _, err := Generate(opt); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
}

func TestPaperDatasetShape(t *testing.T) {
	opt := PaperDataset()
	if opt.Genes != 6102 || opt.Samples != 76 {
		t.Errorf("paper dataset = %dx%d, want 6102x76", opt.Genes, opt.Samples)
	}
	if e := ExonDataset(6); e.Genes != 36612 {
		t.Errorf("exon x6 = %d genes, want 36612", e.Genes)
	}
	if e := ExonDataset(12); e.Genes != 73224 {
		t.Errorf("exon x12 = %d genes, want 73224", e.Genes)
	}
}

func TestSizeMBMatchesPaper(t *testing.T) {
	// The paper quotes 21.22 MB for 36612×76 and 42.45 MB for 73224×76.
	d := &Dataset{X: make([][]float64, 36612)}
	for i := range d.X {
		d.X[i] = make([]float64, 76)
	}
	if got := d.SizeMB(); math.Abs(got-21.22) > 0.05 {
		t.Errorf("36612x76 SizeMB = %.2f, want 21.22", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, _ := Generate(GenOptions{Genes: 30, Samples: 8, Classes: 2, DiffFraction: 0.1, MissingRate: 0.05, Seed: 9})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != d.Rows() || back.Cols() != d.Cols() {
		t.Fatalf("round trip dims %dx%d", back.Rows(), back.Cols())
	}
	for j := range d.Labels {
		if back.Labels[j] != d.Labels[j] {
			t.Fatalf("label %d: %d != %d", j, back.Labels[j], d.Labels[j])
		}
	}
	for i := range d.X {
		if back.GeneNames[i] != d.GeneNames[i] {
			t.Fatalf("gene name %d: %q != %q", i, back.GeneNames[i], d.GeneNames[i])
		}
		if back.Differential[i] != d.Differential[i] {
			t.Fatalf("differential flag %d mismatch", i)
		}
		for j := range d.X[i] {
			a, b := d.X[i][j], back.X[i][j]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("cell (%d,%d): %v != %v", i, j, a, b)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                  // empty
		"gene\n",                            // header too short
		"gene,s01.c0,s02.c1\n",              // no data rows
		"gene,s01,s02.c1\ng1,1,2\n",         // missing class suffix
		"gene,s01.cX,s02.c1\ng1,1,2\n",      // bad class number
		"gene,s01.c0,s02.c1\ng1,1\n",        // short row
		"gene,s01.c0,s02.c1\ng1,1,badnum\n", // bad float
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestQuickCSVRoundTripValues(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		vals = vals[:2]
		for i, v := range vals {
			if math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		d := &Dataset{
			X:      [][]float64{vals},
			Labels: []int{0, 1},
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		for j := range vals {
			a, b := vals[j], back.X[0][j]
			if math.IsNaN(a) != math.IsNaN(b) {
				return false
			}
			if !math.IsNaN(a) && a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
