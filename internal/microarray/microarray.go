// Package microarray synthesises and serialises gene-expression datasets
// with the shapes used in the paper's evaluation: a pre-processed
// expression matrix of rows = genes and columns = samples, plus a class
// label per sample.
//
// The paper benchmarks a 6102×76 microarray (Tables I–V) and exon-array
// sized matrices of 36612×76 and 73224×76 (Table VI).  Those datasets are
// not public; the generator here produces matrices that are statistically
// equivalent for timing purposes (identical dimensions; log-normal-like
// intensity distributions) and *verifiable* for correctness purposes: a
// configurable fraction of genes carries a known shift between classes, so
// analyses must rank exactly those genes first.
package microarray

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sprint/internal/rng"
)

// Dataset is an expression matrix with its sample design.
type Dataset struct {
	// X is the expression matrix, rows = genes, columns = samples.
	X [][]float64
	// Labels assigns each sample column a class.
	Labels []int
	// GeneNames names the rows; generated datasets use g000001-style
	// names with a ".DE" suffix on truly differential genes.
	GeneNames []string
	// Differential flags the rows generated with a real class effect.
	Differential []bool
}

// Rows and Cols report the matrix dimensions.
func (d *Dataset) Rows() int { return len(d.X) }

// Cols reports the number of sample columns.
func (d *Dataset) Cols() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// GenOptions configures the synthetic generator.
type GenOptions struct {
	Genes   int // number of rows
	Samples int // number of columns
	Classes int // number of classes (2 for t-type tests)
	// DiffFraction is the fraction of genes with a true class effect.
	DiffFraction float64
	// EffectSize is the shift (in within-class standard deviations)
	// applied to differential genes in class 1 (and scaled for higher
	// classes).
	EffectSize float64
	// MissingRate introduces missing values (NaN) uniformly at random.
	MissingRate float64
	// Paired lays samples out as consecutive (0,1) pairs for pairt.
	Paired bool
	// Blocked lays samples out as consecutive blocks of Classes
	// treatments for blockf.
	Blocked bool
	// Seed drives the generator; equal seeds give equal datasets.
	Seed uint64
}

// PaperDataset returns the generation options matching the paper's primary
// benchmark input: 6102 genes × 76 samples, two classes of 38.
func PaperDataset() GenOptions {
	return GenOptions{Genes: 6102, Samples: 76, Classes: 2, DiffFraction: 0.05, EffectSize: 1.5, Seed: 76}
}

// ExonDataset returns generation options for the Table VI matrices: factor
// = 6 gives 36612×76, factor = 12 gives 73224×76.
func ExonDataset(factor int) GenOptions {
	o := PaperDataset()
	o.Genes = 6102 * factor
	return o
}

// Generate builds a synthetic dataset.  Expression values follow a
// log-normal-like intensity model: baseline ~ N(8, 2) per gene (log2
// scale), within-class noise ~ N(0, 1), matching the general shape of
// pre-processed microarray data.
func Generate(opt GenOptions) (*Dataset, error) {
	if opt.Genes <= 0 || opt.Samples <= 0 {
		return nil, fmt.Errorf("microarray: dimensions %dx%d must be positive", opt.Genes, opt.Samples)
	}
	if opt.Classes < 2 {
		opt.Classes = 2
	}
	if opt.Paired && opt.Blocked {
		return nil, fmt.Errorf("microarray: Paired and Blocked are mutually exclusive")
	}
	if opt.Paired && opt.Samples%2 != 0 {
		return nil, fmt.Errorf("microarray: paired design needs an even sample count, have %d", opt.Samples)
	}
	if opt.Blocked && opt.Samples%opt.Classes != 0 {
		return nil, fmt.Errorf("microarray: blocked design needs samples divisible by %d classes", opt.Classes)
	}
	if opt.DiffFraction < 0 || opt.DiffFraction > 1 {
		return nil, fmt.Errorf("microarray: DiffFraction %v out of [0,1]", opt.DiffFraction)
	}
	if opt.MissingRate < 0 || opt.MissingRate >= 1 {
		return nil, fmt.Errorf("microarray: MissingRate %v out of [0,1)", opt.MissingRate)
	}

	labels := makeLabels(opt)
	src := rng.New(opt.Seed)
	nDiff := int(math.Round(opt.DiffFraction * float64(opt.Genes)))
	d := &Dataset{
		X:            make([][]float64, opt.Genes),
		Labels:       labels,
		GeneNames:    make([]string, opt.Genes),
		Differential: make([]bool, opt.Genes),
	}
	for g := 0; g < opt.Genes; g++ {
		base := 8 + 2*src.NormFloat64()
		diff := g < nDiff
		d.Differential[g] = diff
		suffix := ""
		if diff {
			suffix = ".DE"
		}
		d.GeneNames[g] = fmt.Sprintf("g%06d%s", g+1, suffix)
		row := make([]float64, opt.Samples)
		for s := 0; s < opt.Samples; s++ {
			v := base + src.NormFloat64()
			if diff && labels[s] > 0 {
				v += opt.EffectSize * float64(labels[s])
			}
			if opt.MissingRate > 0 && src.Float64() < opt.MissingRate {
				v = math.NaN()
			}
			row[s] = v
		}
		d.X[g] = row
	}
	return d, nil
}

// makeLabels lays out the class labels for the requested design.
func makeLabels(opt GenOptions) []int {
	labels := make([]int, opt.Samples)
	switch {
	case opt.Paired:
		for j := 0; j < opt.Samples/2; j++ {
			labels[2*j], labels[2*j+1] = 0, 1
		}
	case opt.Blocked:
		k := opt.Classes
		for b := 0; b < opt.Samples/k; b++ {
			for t := 0; t < k; t++ {
				labels[b*k+t] = t
			}
		}
	default:
		// Balanced contiguous classes, like the paper's 38+38 split.
		per := opt.Samples / opt.Classes
		for s := range labels {
			c := s / per
			if c >= opt.Classes {
				c = opt.Classes - 1
			}
			labels[s] = c
		}
	}
	return labels
}

// WriteCSV serialises the dataset: a header row with sample names and class
// labels ("s01.c0", "s02.c1", ...), then one row per gene with its name and
// values.  Missing values serialise as "NA".
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := make([]string, d.Cols()+1)
	header[0] = "gene"
	for j := 0; j < d.Cols(); j++ {
		header[j+1] = fmt.Sprintf("s%02d.c%d", j+1, d.Labels[j])
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, d.Cols()+1)
	for i, row := range d.X {
		if d.GeneNames != nil {
			rec[0] = d.GeneNames[i]
		} else {
			rec[0] = fmt.Sprintf("g%06d", i+1)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				rec[j+1] = "NA"
			} else {
				rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV in the same
// layout).  Class labels are recovered from the ".c<k>" suffix of the
// sample names; "NA", "NaN" and empty cells are missing values.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("microarray: reading header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("microarray: header has %d columns, want >= 2", len(header))
	}
	cols := len(header) - 1
	labels := make([]int, cols)
	for j, name := range header[1:] {
		idx := strings.LastIndex(name, ".c")
		if idx < 0 {
			return nil, fmt.Errorf("microarray: sample %q has no .c<class> suffix", name)
		}
		c, err := strconv.Atoi(name[idx+2:])
		if err != nil {
			return nil, fmt.Errorf("microarray: sample %q class: %w", name, err)
		}
		labels[j] = c
	}
	d := &Dataset{Labels: labels}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("microarray: line %d: %w", line+1, err)
		}
		line++
		if len(rec) != cols+1 {
			return nil, fmt.Errorf("microarray: line %d has %d fields, want %d", line, len(rec), cols+1)
		}
		row := make([]float64, cols)
		for j, cell := range rec[1:] {
			switch cell {
			case "NA", "NaN", "":
				row[j] = math.NaN()
			default:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("microarray: line %d field %d: %w", line, j+2, err)
				}
				row[j] = v
			}
		}
		d.GeneNames = append(d.GeneNames, rec[0])
		d.Differential = append(d.Differential, strings.HasSuffix(rec[0], ".DE"))
		d.X = append(d.X, row)
	}
	if len(d.X) == 0 {
		return nil, fmt.Errorf("microarray: no data rows")
	}
	return d, nil
}

// SizeMB reports the in-memory matrix size in megabytes at 8 bytes per
// cell — double precision, the accounting under which the paper quotes
// "21.22 MB" for 36612×76 and "42.45 MB" for 73224×76 in Table VI.
func (d *Dataset) SizeMB() float64 {
	return float64(d.Rows()) * float64(d.Cols()) * 8 / (1024 * 1024)
}
