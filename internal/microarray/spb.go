package microarray

import (
	"fmt"
	"io"
	"strings"

	"sprint/internal/matrix"
)

// This file bridges Dataset to the binary spb codec (internal/matrix):
// the fast interchange format of the data plane.  CSV remains the
// human-readable format; spb is what servers ingest without parsing text.

// WriteSPB serialises the dataset in the binary spb format: the matrix in
// the engine's row-major layout (zero-work decode), the class labels, and
// the gene names.  Differential flags ride in the names' ".DE" suffix,
// exactly as in the CSV format.
func (d *Dataset) WriteSPB(w io.Writer) error {
	m, err := matrix.FromRows(d.X)
	if err != nil {
		return fmt.Errorf("microarray: %w", err)
	}
	names := d.GeneNames
	if names == nil {
		names = make([]string, d.Rows())
		for i := range names {
			names[i] = fmt.Sprintf("g%06d", i+1)
		}
	}
	if err := matrix.Encode(w, m, d.Labels, names, matrix.RowMajor); err != nil {
		return fmt.Errorf("microarray: %w", err)
	}
	return nil
}

// ReadSPB parses a dataset written by WriteSPB (or any spb stream that
// carries class labels).  Matrices without labels are rejected: a dataset
// is a matrix plus its design, and an unlabeled file cannot be analysed.
func ReadSPB(r io.Reader) (*Dataset, error) {
	f, err := matrix.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("microarray: %w", err)
	}
	if f.Labels == nil {
		return nil, fmt.Errorf("microarray: spb stream carries no class labels (a bare matrix is a dataset-registry payload, not an analysable dataset)")
	}
	d := &Dataset{X: f.M.RowsView(), Labels: f.Labels, GeneNames: f.Names}
	if f.Names != nil {
		d.Differential = make([]bool, len(f.Names))
		for i, name := range f.Names {
			d.Differential[i] = strings.HasSuffix(name, ".DE")
		}
	}
	return d, nil
}

// Matrix flattens the dataset into the engine's contiguous row-major
// matrix (one copy; the dataset is not modified).
func (d *Dataset) Matrix() (matrix.Matrix, error) {
	m, err := matrix.FromRows(d.X)
	if err != nil {
		return matrix.Matrix{}, fmt.Errorf("microarray: %w", err)
	}
	return m, nil
}
