package maxt

import (
	"math"
	"testing"

	"sprint/internal/perm"
	"sprint/internal/stat"
)

// TestSubsetCountsBitwiseEqualFullPrep is the sequential engine's load-
// bearing invariant: processing a suffix of the significance order through
// a compacted sub-prep accumulates, permutation for permutation, exactly
// the counts the full prep produces for the same rows.
func TestSubsetCountsBitwiseEqualFullPrep(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	const B = 400
	full := NewCounts(p.Rows())
	Process(p, perm.NewRandom(p.Design, 21, B), 0, B, full, nil)

	// Drop every possible frozen prefix of the order (the subset API's
	// contract: a contiguous suffix run of computable positions).
	for prefix := 0; prefix < p.Valid; prefix++ {
		rows := make([]int, p.Valid-prefix)
		for i := range rows {
			rows[i] = p.Order[prefix+i]
		}
		sub, err := p.Subset(rows)
		if err != nil {
			t.Fatalf("prefix %d: %v", prefix, err)
		}
		subCounts := NewCounts(sub.Rows())
		Process(sub, perm.NewRandom(p.Design, 21, B), 0, B, subCounts, nil)
		for si, r := range rows {
			if subCounts.Raw[si] != full.Raw[r] || subCounts.Adj[si] != full.Adj[r] {
				t.Fatalf("prefix %d row %d: sub (raw=%d,adj=%d) != full (raw=%d,adj=%d)",
					prefix, r, subCounts.Raw[si], subCounts.Adj[si], full.Raw[r], full.Adj[r])
			}
		}
		if subCounts.B != full.B {
			t.Fatalf("prefix %d: sub B=%d, full B=%d", prefix, subCounts.B, full.B)
		}
	}
}

// TestSubsetBatchedEqualsUnbatched guards the compacted prep down the
// batched kernel path the sequential engine actually runs.
func TestSubsetBatchedEqualsUnbatched(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	const B = 256
	rows := make([]int, p.Valid-1)
	for i := range rows {
		rows[i] = p.Order[1+i]
	}
	sub, err := p.Subset(rows)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewCounts(sub.Rows())
	Process(sub, perm.NewRandom(p.Design, 5, B), 0, B, plain, nil)
	batched := NewCounts(sub.Rows())
	ProcessBatched(sub, perm.NewRandom(p.Design, 5, B), 0, B, batched, sub.NewScratch(), 64)
	for i := range plain.Raw {
		if plain.Raw[i] != batched.Raw[i] || plain.Adj[i] != batched.Adj[i] {
			t.Fatalf("row %d: batched subset counts differ", i)
		}
	}
}

func TestSubsetValidation(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	if _, err := p.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := p.Subset([]int{p.Rows()}); err == nil {
		t.Error("out-of-range row accepted")
	}
	// A row with no computable statistic may not enter a subset.
	x := [][]float64{
		{1, 2, 1.5, 8, 9, 8.5},
		{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()},
	}
	pn := mustPrep(t, x, stat.Welch, tinyLabels, Abs)
	if _, err := pn.Subset([]int{1}); err == nil {
		t.Error("NaN-statistic row accepted into a subset")
	}
}

// TestFinalizeEffectiveUniformMatchesFinalize: with a uniform bEff equal
// to the shared B, the effective finalisation is exactly the classic one.
func TestFinalizeEffectiveUniformMatchesFinalize(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	const B = 300
	c := NewCounts(p.Rows())
	Process(p, perm.NewRandom(p.Design, 13, B), 0, B, c, nil)

	want := Finalize(p, c)
	bEff := make([]int64, p.Rows())
	for j := 0; j < p.Valid; j++ {
		bEff[p.Order[j]] = c.B
	}
	got := FinalizeEffective(p, c, bEff)
	for i := range want.RawP {
		if math.Float64bits(want.RawP[i]) != math.Float64bits(got.RawP[i]) ||
			math.Float64bits(want.AdjP[i]) != math.Float64bits(got.AdjP[i]) {
			t.Fatalf("row %d: uniform effective (%v,%v) != classic (%v,%v)",
				i, got.RawP[i], got.AdjP[i], want.RawP[i], want.AdjP[i])
		}
	}
}

// TestFinalizeEffectivePerRowDivisors: each row divides by its own
// effective count, rows with bEff 0 get NaN, and the adjusted values stay
// monotone along the order.
func TestFinalizeEffectivePerRowDivisors(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	c := NewCounts(p.Rows())
	bEff := make([]int64, p.Rows())
	for j := 0; j < p.Valid; j++ {
		r := p.Order[j]
		bEff[r] = int64(100 * (j + 1))
		c.Raw[r] = int64(j + 1)
		c.Adj[r] = int64(j + 1)
	}
	c.B = 600
	// One frozen-out row: simulate a row with no effective count.
	drop := p.Order[p.Valid-1]
	bEff[drop] = 0

	res := FinalizeEffective(p, c, bEff)
	for j := 0; j < p.Valid; j++ {
		r := p.Order[j]
		if r == drop {
			if !math.IsNaN(res.RawP[r]) || !math.IsNaN(res.AdjP[r]) {
				t.Fatalf("bEff=0 row got p-values %v/%v, want NaN", res.RawP[r], res.AdjP[r])
			}
			continue
		}
		want := float64(j+1) / float64(100*(j+1))
		if res.RawP[r] != want {
			t.Fatalf("row %d: RawP = %v, want count/bEff = %v", r, res.RawP[r], want)
		}
	}
	prev := 0.0
	for j := 0; j < p.Valid; j++ {
		r := p.Order[j]
		if math.IsNaN(res.AdjP[r]) {
			continue
		}
		if res.AdjP[r] < prev {
			t.Fatalf("adjusted p-values not monotone: %v after %v", res.AdjP[r], prev)
		}
		prev = res.AdjP[r]
	}
}
