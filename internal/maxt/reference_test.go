package maxt

import (
	"math"
	"testing"

	"sprint/internal/perm"
	"sprint/internal/stat"
)

// Independent reference implementations for the F and paired-t paths,
// sharing no code with internal/stat or the engine, used to cross-validate
// complete-enumeration p-values.

func refOnewayF(row []float64, lab []int, k int) float64 {
	n := make([]int, k)
	sum := make([]float64, k)
	for j, v := range row {
		n[lab[j]]++
		sum[lab[j]] += v
	}
	total := 0
	grand := 0.0
	for g := 0; g < k; g++ {
		if n[g] < 2 {
			return math.NaN()
		}
		total += n[g]
		grand += sum[g]
	}
	grand /= float64(total)
	var ssb, ssw float64
	for g := 0; g < k; g++ {
		m := sum[g] / float64(n[g])
		ssb += float64(n[g]) * (m - grand) * (m - grand)
	}
	for j, v := range row {
		m := sum[lab[j]] / float64(n[lab[j]])
		ssw += (v - m) * (v - m)
	}
	if ssw == 0 {
		return math.NaN()
	}
	return (ssb / float64(k-1)) / (ssw / float64(total-k))
}

func refPairedT(row []float64, lab []int) float64 {
	m := len(row) / 2
	var sum, sumSq float64
	for j := 0; j < m; j++ {
		d := row[2*j+1] - row[2*j]
		if lab[2*j] == 1 {
			d = -d
		}
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(m)
	variance := (sumSq - float64(m)*mean*mean) / float64(m-1)
	if variance <= 0 {
		return math.NaN()
	}
	return mean / math.Sqrt(variance/float64(m))
}

// refExactMaxT runs the full maxT definition over an explicit labelling
// list with an arbitrary statistic.
func refExactMaxT(x [][]float64, labellings [][]int, statFn func([]float64, []int) float64) (rawp, adjp []float64) {
	n := len(x)
	obs := make([]float64, n)
	for i := range x {
		obs[i] = math.Abs(statFn(x[i], labellings[0]))
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && obs[order[j]] > obs[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	rawCount := make([]int, n)
	adjCount := make([]int, n)
	for _, lab := range labellings {
		z := make([]float64, n)
		for i := range x {
			z[i] = math.Abs(statFn(x[i], lab))
			if math.IsNaN(z[i]) {
				z[i] = math.Inf(-1)
			}
		}
		for i := range z {
			if z[i] >= obs[i] {
				rawCount[i]++
			}
		}
		u := math.Inf(-1)
		for j := n - 1; j >= 0; j-- {
			r := order[j]
			if z[r] > u {
				u = z[r]
			}
			if u >= obs[r] {
				adjCount[r]++
			}
		}
	}
	rawp = make([]float64, n)
	adjp = make([]float64, n)
	B := float64(len(labellings))
	for i := range rawp {
		rawp[i] = float64(rawCount[i]) / B
	}
	prev := 0.0
	for _, r := range order {
		v := float64(adjCount[r]) / B
		if v < prev {
			v = prev
		}
		adjp[r] = v
		prev = v
	}
	return rawp, adjp
}

// allMultisetLabellings enumerates every distinct arrangement of the label
// multiset by recursion, observed labelling first.
func allMultisetLabellings(labels []int, k int) [][]int {
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	var out [][]int
	out = append(out, append([]int(nil), labels...))
	cur := make([]int, len(labels))
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(labels) {
			same := true
			for i := range cur {
				if cur[i] != labels[i] {
					same = false
					break
				}
			}
			if !same {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			counts[c]--
			cur[pos] = c
			rec(pos + 1)
			counts[c]++
		}
	}
	rec(0)
	return out
}

// allPairFlipLabellings enumerates the 2^m sign-flip labellings, observed
// first (mask 0).
func allPairFlipLabellings(labels []int) [][]int {
	m := len(labels) / 2
	var out [][]int
	for mask := 0; mask < 1<<uint(m); mask++ {
		lab := append([]int(nil), labels...)
		for j := 0; j < m; j++ {
			if mask&(1<<uint(j)) != 0 {
				lab[2*j], lab[2*j+1] = lab[2*j+1], lab[2*j]
			}
		}
		out = append(out, lab)
	}
	return out
}

var fX = [][]float64{
	{2.13, 1.87, 5.04, 5.43, 9.11, 8.76},
	{4.07, 4.19, 4.33, 3.87, 4.25, 4.12},
	{1.03, 7.11, 3.04, 5.12, 2.33, 6.08},
}

func TestFCompleteMatchesReference(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	d, err := stat.NewDesign(stat.F, labels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrep(fX, d, Abs, false)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := perm.NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	got := Run(p, gen)
	if got.B != 90 { // 6!/(2!2!2!)
		t.Fatalf("B = %d, want 90", got.B)
	}
	wantRaw, wantAdj := refExactMaxT(fX, allMultisetLabellings(labels, 3),
		func(row []float64, lab []int) float64 { return refOnewayF(row, lab, 3) })
	for i := range fX {
		if math.Abs(got.RawP[i]-wantRaw[i]) > 1e-12 {
			t.Errorf("row %d: rawp %v, want %v", i, got.RawP[i], wantRaw[i])
		}
		if math.Abs(got.AdjP[i]-wantAdj[i]) > 1e-12 {
			t.Errorf("row %d: adjp %v, want %v", i, got.AdjP[i], wantAdj[i])
		}
	}
}

func TestPairTCompleteMatchesReference(t *testing.T) {
	x := [][]float64{
		{1.13, 3.27, 2.04, 5.44, 4.18, 4.96, 3.07, 7.31},
		{5.02, 4.87, 5.33, 5.18, 4.76, 5.09, 5.21, 4.93},
	}
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	d, err := stat.NewDesign(stat.PairT, labels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrep(x, d, Abs, false)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := perm.NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	got := Run(p, gen)
	if got.B != 16 {
		t.Fatalf("B = %d, want 16", got.B)
	}
	wantRaw, wantAdj := refExactMaxT(x, allPairFlipLabellings(labels), refPairedT)
	for i := range x {
		if math.Abs(got.RawP[i]-wantRaw[i]) > 1e-12 {
			t.Errorf("row %d: rawp %v, want %v", i, got.RawP[i], wantRaw[i])
		}
		if math.Abs(got.AdjP[i]-wantAdj[i]) > 1e-12 {
			t.Errorf("row %d: adjp %v, want %v", i, got.AdjP[i], wantAdj[i])
		}
	}
}

func TestPairTSignSymmetryExactness(t *testing.T) {
	// Under complete sign flips, a single row's |paired t| distribution
	// is symmetric: the observed labelling and its full mirror always
	// give equal |t|, so the exact raw p of any row is at least 2/2^m.
	x := [][]float64{{1.1, 9.2, 2.3, 8.1, 0.7, 9.9, 1.5, 8.8}}
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	d, _ := stat.NewDesign(stat.PairT, labels)
	p, _ := NewPrep(x, d, Abs, false)
	gen, _ := perm.NewComplete(d)
	res := Run(p, gen)
	if res.RawP[0] < 2.0/16-1e-12 {
		t.Errorf("rawp = %v below the symmetry floor 2/16", res.RawP[0])
	}
}

// refBlockF is an independent randomized-complete-block F (complete data).
func refBlockF(row []float64, lab []int, k int) float64 {
	blocks := len(row) / k
	treatSum := make([]float64, k)
	blockSum := make([]float64, blocks)
	grand := 0.0
	for b := 0; b < blocks; b++ {
		for j := 0; j < k; j++ {
			v := row[b*k+j]
			treatSum[lab[b*k+j]] += v
			blockSum[b] += v
			grand += v
		}
	}
	n := float64(blocks * k)
	gm := grand / n
	var ssTotal, ssTreat, ssBlock float64
	for _, v := range row {
		ssTotal += (v - gm) * (v - gm)
	}
	for t := 0; t < k; t++ {
		d := treatSum[t]/float64(blocks) - gm
		ssTreat += float64(blocks) * d * d
	}
	for b := 0; b < blocks; b++ {
		d := blockSum[b]/float64(k) - gm
		ssBlock += float64(k) * d * d
	}
	ssErr := ssTotal - ssTreat - ssBlock
	dfErr := float64((k - 1) * (blocks - 1))
	if dfErr <= 0 || ssErr <= 0 {
		return math.NaN()
	}
	return (ssTreat / float64(k-1)) / (ssErr / dfErr)
}

// allBlockLabellings enumerates the (k!)^blocks within-block relabellings
// by recursion over blocks, observed first.
func allBlockLabellings(labels []int, k int) [][]int {
	blocks := len(labels) / k
	perms := permutationsOf(k)
	var out [][]int
	cur := append([]int(nil), labels...)
	var rec func(b int)
	rec = func(b int) {
		if b == blocks {
			same := true
			for i := range cur {
				if cur[i] != labels[i] {
					same = false
					break
				}
			}
			if !same {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		for _, p := range perms {
			for j := 0; j < k; j++ {
				cur[b*k+j] = labels[b*k+p[j]]
			}
			rec(b + 1)
		}
	}
	out = append(out, append([]int(nil), labels...))
	rec(0)
	// Deduplicate: distinct position-permutations can induce the same
	// labelling only if block labels repeat, which the design forbids,
	// so no dedup is needed.
	return out
}

func permutationsOf(k int) [][]int {
	var out [][]int
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]int(nil), p...))
			return
		}
		for j := i; j < k; j++ {
			p[i], p[j] = p[j], p[i]
			rec(i + 1)
			p[i], p[j] = p[j], p[i]
		}
	}
	rec(0)
	return out
}

func TestBlockFCompleteMatchesReference(t *testing.T) {
	x := [][]float64{
		{1.07, 2.13, 3.24, 5.18, 4.02, 6.33},
		{2.91, 2.87, 3.11, 3.04, 2.95, 3.08},
	}
	labels := []int{0, 1, 0, 1, 0, 1} // 3 blocks of 2 treatments
	d, err := stat.NewDesign(stat.BlockF, labels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrep(x, d, Abs, false)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := perm.NewComplete(d)
	if err != nil {
		t.Fatal(err)
	}
	got := Run(p, gen)
	if got.B != 8 { // (2!)^3
		t.Fatalf("B = %d, want 8", got.B)
	}
	wantRaw, wantAdj := refExactMaxT(x, allBlockLabellings(labels, 2),
		func(row []float64, lab []int) float64 { return refBlockF(row, lab, 2) })
	for i := range x {
		if math.Abs(got.RawP[i]-wantRaw[i]) > 1e-12 {
			t.Errorf("row %d: rawp %v, want %v", i, got.RawP[i], wantRaw[i])
		}
		if math.Abs(got.AdjP[i]-wantAdj[i]) > 1e-12 {
			t.Errorf("row %d: adjp %v, want %v", i, got.AdjP[i], wantAdj[i])
		}
	}
}

func TestWilcoxonExactTwoSided(t *testing.T) {
	// 4 vs 4 samples with a perfectly separated row: of C(8,4) = 70
	// labellings only the observed split and its mirror attain the
	// maximal |z|, so the exact two-sided raw p is 2/70.
	x := [][]float64{{1, 2, 3, 4, 10, 11, 12, 13}}
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	d, _ := stat.NewDesign(stat.Wilcoxon, labels)
	p, err := NewPrep(x, d, Abs, false)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := perm.NewComplete(d)
	res := Run(p, gen)
	if res.B != 70 {
		t.Fatalf("B = %d, want 70", res.B)
	}
	if math.Abs(res.RawP[0]-2.0/70) > 1e-12 {
		t.Errorf("wilcoxon exact p = %v, want %v", res.RawP[0], 2.0/70)
	}
}

// TestEqualVarTCompleteMatchesWelchOrdering: with balanced groups the
// pooled and Welch statistics are monotone transforms of each other, so
// complete-enumeration raw p-values must agree exactly.
func TestEqualVarTCompleteVsWelch(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1}
	dW, _ := stat.NewDesign(stat.Welch, labels)
	dE, _ := stat.NewDesign(stat.TEqualVar, labels)
	x := [][]float64{
		{2.17, 3.04, 2.66, 7.13, 6.51, 7.96},
		{4.03, 4.97, 4.51, 4.22, 4.76, 4.40},
	}
	pW, _ := NewPrep(x, dW, Abs, false)
	pE, _ := NewPrep(x, dE, Abs, false)
	gW, _ := perm.NewComplete(dW)
	gE, _ := perm.NewComplete(dE)
	rW, rE := Run(pW, gW), Run(pE, gE)
	for i := range x {
		if math.Abs(rW.RawP[i]-rE.RawP[i]) > 1e-12 {
			t.Errorf("row %d: welch rawp %v != equalvar rawp %v (balanced groups)",
				i, rW.RawP[i], rE.RawP[i])
		}
	}
}
