package maxt

import (
	"fmt"
	"math"
	"testing"

	"sprint/internal/matrix"
	"sprint/internal/perm"
	"sprint/internal/stat"
)

// deltaMatrix builds a small matrix with ties and optional NA holes.
func deltaMatrix(rows, cols int, withNA bool, seed int64) matrix.Matrix {
	m := matrix.New(rows, cols)
	s := seed
	next := func() int64 { s = s*6364136223846793005 + 1442695040888963407; return (s >> 33) & 0x7fffffff }
	for o := range m.Data {
		m.Data[o] = float64(next() % 9)
		if withNA && next()%13 == 0 {
			m.Data[o] = math.NaN()
		}
	}
	return m
}

// TestRevolvingDoorEndToEnd is the set-equality property at the counting
// layer: a complete enumeration processed in revolving-door order (the
// delta path) accumulates EXACTLY the counts and adjusted p-values of the
// combinadic order (the PR 3 batch path), for every two-sample test, side,
// nonpara setting, NA pattern and batch size — including batch sizes that
// leave ragged tails and scalar fallbacks.
func TestRevolvingDoorEndToEnd(t *testing.T) {
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1, 1}
	for _, test := range []stat.Test{stat.Welch, stat.TEqualVar, stat.Wilcoxon} {
		for _, side := range []Side{Abs, Upper, Lower} {
			for _, nonpara := range []bool{true, false} {
				if test == stat.Wilcoxon && !nonpara {
					// Wilcoxon is rank-based regardless; one pass suffices.
					continue
				}
				for _, withNA := range []bool{false, true} {
					name := fmt.Sprintf("%v/%v/nonpara=%v/na=%v", test, side, nonpara, withNA)
					t.Run(name, func(t *testing.T) {
						d, err := stat.NewDesign(test, labels)
						if err != nil {
							t.Fatal(err)
						}
						m := deltaMatrix(25, d.N, withNA, int64(test)*31+int64(side)*7+5)
						prep, err := NewPrepMatrix(m, d, side, nonpara)
						if err != nil {
							t.Fatal(err)
						}
						comp, err := perm.NewComplete(d)
						if err != nil {
							t.Fatal(err)
						}
						door, err := perm.NewRevolvingDoor(d)
						if err != nil {
							t.Fatal(err)
						}
						// The delta machinery must actually engage on rank
						// data: without this assertion the test could pass
						// with the fast path silently dead.  (The two-sample
						// t kernels keep the batch path at small group
						// sizes — profitability gate — so only Wilcoxon is
						// asserted to dispatch through StatsDelta here.)
						if test == stat.Wilcoxon {
							dk, ok := prep.Kernel.(stat.DeltaKernel)
							if !ok || !dk.DeltaOK() {
								t.Fatal("delta kernel not available on rank data")
							}
						}
						total := comp.Total()
						want := NewCounts(prep.Rows())
						ProcessBatched(prep, comp, 0, total, want, nil, 16)
						for _, batch := range []int{1, 5, 16, int(total)} {
							got := NewCounts(prep.Rows())
							ProcessBatched(prep, door, 0, total, got, nil, batch)
							if got.B != want.B {
								t.Fatalf("batch %d: B = %d, want %d", batch, got.B, want.B)
							}
							for i := range want.Raw {
								if got.Raw[i] != want.Raw[i] || got.Adj[i] != want.Adj[i] {
									t.Fatalf("batch %d row %d: counts (%d,%d), want (%d,%d)",
										batch, i, got.Raw[i], got.Adj[i], want.Raw[i], want.Adj[i])
								}
							}
							rd := Finalize(prep, got)
							rc := Finalize(prep, want)
							for i := range rc.AdjP {
								if math.Float64bits(rd.AdjP[i]) != math.Float64bits(rc.AdjP[i]) ||
									math.Float64bits(rd.RawP[i]) != math.Float64bits(rc.RawP[i]) {
									t.Fatalf("batch %d row %d: p-values differ", batch, i)
								}
							}
						}
						// Chunked door processing merges to the same counts
						// (rank-aligned unranking at arbitrary offsets).
						merged := NewCounts(prep.Rows())
						bounds := []int64{0, total / 3, 2*total/3 + 1, total}
						for c := 0; c+1 < len(bounds); c++ {
							part := NewCounts(prep.Rows())
							ProcessBatched(prep, door, bounds[c], bounds[c+1], part, nil, 4)
							merged.Merge(part)
						}
						for i := range want.Raw {
							if merged.Raw[i] != want.Raw[i] || merged.Adj[i] != want.Adj[i] {
								t.Fatalf("chunked row %d: counts (%d,%d), want (%d,%d)",
									i, merged.Raw[i], merged.Adj[i], want.Raw[i], want.Adj[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestDeltaLoopZeroAllocs asserts the steady-state delta loop — generator
// unranking, move derivation, kernel update and counting — allocates
// nothing once scratch is warm.
func TestDeltaLoopZeroAllocs(t *testing.T) {
	d, err := stat.NewDesign(stat.Wilcoxon, []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := deltaMatrix(60, d.N, false, 9)
	prep, err := NewPrepMatrix(m, d, Abs, false)
	if err != nil {
		t.Fatal(err)
	}
	door, err := perm.NewRevolvingDoor(d)
	if err != nil {
		t.Fatal(err)
	}
	if dk, ok := prep.Kernel.(stat.DeltaKernel); !ok || !dk.DeltaOK() {
		t.Fatal("delta path not engaged")
	}
	scratch := prep.NewScratch()
	c := NewCounts(prep.Rows())
	const batch = 32
	// Warm every grow-on-demand buffer.
	ProcessBatched(prep, door, 0, 2*batch, c, scratch, batch)
	allocs := testing.AllocsPerRun(10, func() {
		ProcessBatched(prep, door, 0, 2*batch, c, scratch, batch)
	})
	if allocs != 0 {
		t.Fatalf("delta loop allocates %v per run in steady state, want 0", allocs)
	}
}
