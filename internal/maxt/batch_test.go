package maxt

import (
	"math"
	"testing"

	"sprint/internal/matrix"
	"sprint/internal/perm"
	"sprint/internal/stat"
)

// batchDesigns covers every permutation action with NA-bearing, unbalanced
// and tied data.
func batchDesigns(t *testing.T) []struct {
	name   string
	test   stat.Test
	labels []int
} {
	t.Helper()
	return []struct {
		name   string
		test   stat.Test
		labels []int
	}{
		{"t-balanced", stat.Welch, []int{0, 1, 0, 1, 1, 0, 1, 0}},
		{"t-unbalanced", stat.Welch, []int{0, 0, 1, 1, 1, 1, 1, 1, 1}},
		{"t.equalvar", stat.TEqualVar, []int{0, 0, 0, 1, 1, 1, 1, 1}},
		{"wilcoxon", stat.Wilcoxon, []int{0, 0, 0, 0, 1, 1, 1, 1, 1}},
		{"f", stat.F, []int{0, 0, 0, 1, 1, 1, 2, 2, 2}},
		{"pairt", stat.PairT, []int{0, 1, 1, 0, 0, 1, 1, 0}},
		{"blockf", stat.BlockF, []int{0, 1, 2, 2, 0, 1, 1, 2, 0}},
	}
}

// batchMatrix builds a quantized (tie-bearing), NA-bearing test matrix.
func batchMatrix(rows, cols int, seed uint64) matrix.Matrix {
	m := matrix.New(rows, cols)
	s := seed
	next := func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	}
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float64(next()%40)/4 - 5 // coarse grid: ties abound
		}
		if i%4 == 1 {
			row[int(next()%uint64(cols))] = math.NaN()
		}
	}
	return m
}

// TestProcessBatchedCountsEqualProcess: for every test, side, nonpara
// setting, generator kind and batch size, ProcessBatched must accumulate
// EXACTLY the counts of the scalar Process — the invariant that keeps
// p-values, cache entries and checkpoints valid under batching.
func TestProcessBatchedCountsEqualProcess(t *testing.T) {
	for _, tc := range batchDesigns(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d, err := stat.NewDesign(tc.test, tc.labels)
			if err != nil {
				t.Fatal(err)
			}
			m := batchMatrix(17, d.N, 0xbeef^uint64(tc.test))
			for _, side := range []Side{Abs, Upper, Lower} {
				for _, nonpara := range []bool{false, true} {
					p, err := NewPrepMatrix(m, d, side, nonpara)
					if err != nil {
						t.Fatal(err)
					}
					const B = 97 // prime: every batch size leaves a ragged tail
					gens := map[string]perm.Generator{
						"random": perm.NewRandom(d, 5, B),
						"stored": perm.NewStored(d, 5, B, 0, B),
					}
					if c, err := perm.NewComplete(d); err == nil && c.Total() <= 4096 {
						gens["complete"] = c
					}
					for gname, gen := range gens {
						total := min64(B, gen.Total())
						want := NewCounts(p.Rows())
						Process(p, gen, 0, total, want, nil)
						for _, batch := range []int{1, 2, 3, 7, 16, 64, 128} {
							got := NewCounts(p.Rows())
							ProcessBatched(p, gen, 0, total, got, nil, batch)
							if got.B != want.B {
								t.Fatalf("%s side=%v np=%v batch=%d: B=%d want %d", gname, side, nonpara, batch, got.B, want.B)
							}
							for i := range want.Raw {
								if got.Raw[i] != want.Raw[i] || got.Adj[i] != want.Adj[i] {
									t.Fatalf("%s side=%v np=%v batch=%d row %d: counts (%d,%d) != (%d,%d)",
										gname, side, nonpara, batch, i, got.Raw[i], got.Adj[i], want.Raw[i], want.Adj[i])
								}
							}
						}
					}
				}
			}
		})
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestProcessBatchedScratchReuse: one worker-owned scratch reused across
// preps of different shapes and tests must not change counts, and the
// steady-state loop must not allocate.
func TestProcessBatchedScratchReuse(t *testing.T) {
	var s *Scratch
	for _, tc := range batchDesigns(t) {
		d, err := stat.NewDesign(tc.test, tc.labels)
		if err != nil {
			t.Fatal(err)
		}
		m := batchMatrix(9, d.N, 31*uint64(tc.test))
		p, err := NewPrepMatrix(m, d, Abs, false)
		if err != nil {
			t.Fatal(err)
		}
		s = p.ScratchFrom(s) // reuse across iterations
		gen := perm.NewRandom(d, 3, 60)
		got := NewCounts(p.Rows())
		ProcessBatched(p, gen, 0, 60, got, s, 16)
		want := NewCounts(p.Rows())
		Process(p, gen, 0, 60, want, nil)
		for i := range want.Raw {
			if got.Raw[i] != want.Raw[i] || got.Adj[i] != want.Adj[i] {
				t.Fatalf("%s: reused scratch drifts at row %d", tc.name, i)
			}
		}
	}
}

// TestProcessBatchedZeroAllocs: with a warmed scratch and the on-the-fly
// generator, the batched main loop must not allocate per call.
func TestProcessBatchedZeroAllocs(t *testing.T) {
	d, err := stat.NewDesign(stat.Welch, []int{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := batchMatrix(32, d.N, 77)
	p, err := NewPrepMatrix(m, d, Abs, false)
	if err != nil {
		t.Fatal(err)
	}
	gen := perm.NewRandom(d, 9, 1<<20)
	s := p.NewScratch()
	c := NewCounts(p.Rows())
	ProcessBatched(p, gen, 0, 64, c, s, 32) // warm the batch buffers
	allocs := testing.AllocsPerRun(10, func() {
		ProcessBatched(p, gen, 64, 128, c, s, 32)
	})
	if allocs != 0 {
		t.Errorf("ProcessBatched allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

// TestCountsReset: Reset must zero counts while reusing capacity.
func TestCountsReset(t *testing.T) {
	c := NewCounts(8)
	for i := range c.Raw {
		c.Raw[i], c.Adj[i] = int64(i), int64(2*i)
	}
	c.B = 42
	buf := &c.Raw[0]
	c.Reset(8)
	if c.B != 0 {
		t.Errorf("B = %d after Reset", c.B)
	}
	for i := range c.Raw {
		if c.Raw[i] != 0 || c.Adj[i] != 0 {
			t.Fatalf("counts not zeroed at %d", i)
		}
	}
	if buf != &c.Raw[0] {
		t.Error("Reset reallocated despite sufficient capacity")
	}
	c.Reset(16)
	if len(c.Raw) != 16 || len(c.Adj) != 16 {
		t.Errorf("Reset(16) sized %d/%d", len(c.Raw), len(c.Adj))
	}
}
