// Package maxt implements the Westfall–Young step-down maxT multiple
// testing procedure that mt.maxT computes and pmaxT parallelises (Ge &
// Dudoit 2003; Westfall & Young 1993).
//
// The procedure: compute the observed test statistic for every row (gene),
// transform it according to the rejection-region side, and order rows by
// decreasing transformed statistic.  For each permutation of the column
// labels, recompute all statistics and form the successive maxima from the
// bottom of the ordered list upward; the adjusted p-value of a row is the
// fraction of permutations whose successive maximum at that row's position
// reaches the observed value.  A final pass enforces monotonicity down the
// ordered list.  Raw (unadjusted) p-values count per-row exceedances only.
//
// The package deliberately separates preparation (Prep), per-chunk counting
// (Process into Counts) and the final reduction (Finalize): this is exactly
// the split pmaxT needs, where each MPI rank processes a chunk of the
// permutation sequence and the master merges the partial counts — Steps 4
// and 5 of Section 3.2 of the paper.
package maxt

import (
	"fmt"
	"math"
	"sort"

	"sprint/internal/perm"
	"sprint/internal/stat"
)

// Side selects the rejection region, mirroring mt.maxT's side parameter.
type Side int

const (
	// Abs tests the absolute difference (side="abs", the default).
	Abs Side = iota
	// Upper tests the maximum (side="upper").
	Upper
	// Lower tests the minimum (side="lower").
	Lower
)

var sideNames = map[Side]string{Abs: "abs", Upper: "upper", Lower: "lower"}

// String returns the mt.maxT name of the side.
func (s Side) String() string {
	if n, ok := sideNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Side(%d)", int(s))
}

// ParseSide converts an mt.maxT side name into a Side.
func ParseSide(s string) (Side, error) {
	for side, name := range sideNames {
		if name == s {
			return side, nil
		}
	}
	return 0, fmt.Errorf("maxt: unknown side %q (want abs, upper or lower)", s)
}

// transform applies the side transform: statistics are compared on the
// transformed scale, where larger always means more extreme.
func (s Side) transform(v float64) float64 {
	switch s {
	case Abs:
		return math.Abs(v)
	case Lower:
		return -v
	default:
		return v
	}
}

// Prep bundles the immutable inputs of a maxT run: the (possibly
// rank-transformed) data, the design, the statistic evaluator, the observed
// statistics and the induced row order.  A Prep is safe for concurrent use;
// per-goroutine scratch lives in Scratch values.
type Prep struct {
	Design *stat.Design
	Side   Side
	X      [][]float64 // rows × columns, transformed copy
	StatFn func(row []float64, lab []int) float64

	Stat  []float64 // untransformed observed statistic per row
	Obs   []float64 // side-transformed observed statistic per row
	Order []int     // row indices by decreasing Obs; NaN rows at the end
	Valid int       // number of rows with a computable observed statistic
}

// NewPrep copies x (rows × columns), applies the rank transform when the
// test requires it (Wilcoxon) or when nonpara is set, computes observed
// statistics under the design's labelling, and derives the step-down order.
// The input matrix is not modified.
func NewPrep(x [][]float64, d *stat.Design, side Side, nonpara bool) (*Prep, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("maxt: empty data matrix")
	}
	for i, row := range x {
		if len(row) != d.N {
			return nil, fmt.Errorf("maxt: row %d has %d columns, design has %d", i, len(row), d.N)
		}
	}
	p := &Prep{
		Design: d,
		Side:   side,
		X:      make([][]float64, len(x)),
		StatFn: d.Func(),
	}
	needRanks := d.NeedsRanks() || nonpara
	var scratch []int
	for i, row := range x {
		cp := append([]float64(nil), row...)
		if needRanks {
			if cap(scratch) < len(cp) {
				scratch = make([]int, len(cp))
			}
			stat.Ranks(cp, scratch)
		}
		p.X[i] = cp
	}
	n := len(p.X)
	p.Stat = make([]float64, n)
	p.Obs = make([]float64, n)
	for i, row := range p.X {
		t := p.StatFn(row, d.Labels)
		p.Stat[i] = t
		if math.IsNaN(t) {
			p.Obs[i] = math.NaN()
		} else {
			p.Obs[i] = side.transform(t)
		}
	}
	p.Order = make([]int, n)
	for i := range p.Order {
		p.Order[i] = i
	}
	// Decreasing transformed statistic; NaN rows sink to the end; ties
	// break on row index so the order — and therefore the parallel
	// reduction — is deterministic.
	sort.SliceStable(p.Order, func(a, b int) bool {
		ra, rb := p.Order[a], p.Order[b]
		va, vb := p.Obs[ra], p.Obs[rb]
		na, nb := math.IsNaN(va), math.IsNaN(vb)
		switch {
		case na && nb:
			return ra < rb
		case na:
			return false
		case nb:
			return true
		case va != vb:
			return va > vb
		default:
			return ra < rb
		}
	})
	p.Valid = 0
	for _, r := range p.Order {
		if math.IsNaN(p.Obs[r]) {
			break
		}
		p.Valid++
	}
	return p, nil
}

// Rows returns the number of rows (genes) in the prepared matrix.
func (p *Prep) Rows() int { return len(p.X) }

// Counts holds partial exceedance counts.  Raw[i] counts permutations whose
// statistic for row i reaches the observed one; Adj[i] counts permutations
// whose successive maximum at row i's ordered position reaches the observed
// statistic.  Counts from disjoint permutation chunks merge by addition —
// the global sum the master performs in Step 5.
type Counts struct {
	Raw []int64
	Adj []int64
	B   int64 // permutations accumulated
}

// NewCounts returns zeroed counts for n rows.
func NewCounts(n int) *Counts {
	return &Counts{Raw: make([]int64, n), Adj: make([]int64, n)}
}

// Merge adds o into c.
func (c *Counts) Merge(o *Counts) {
	if len(o.Raw) != len(c.Raw) {
		panic("maxt: merging counts of different sizes")
	}
	for i := range c.Raw {
		c.Raw[i] += o.Raw[i]
		c.Adj[i] += o.Adj[i]
	}
	c.B += o.B
}

// Scratch holds per-goroutine working storage for Process, so concurrent
// chunks never share mutable state.
type Scratch struct {
	lab []int
	z   []float64
}

// NewScratch sizes scratch space for the given prep.
func (p *Prep) NewScratch() *Scratch {
	return &Scratch{
		lab: make([]int, p.Design.N),
		z:   make([]float64, len(p.X)),
	}
}

// Process accumulates exceedance counts for permutation indices [lo, hi) of
// gen into c.  It is the computational kernel of both mt.maxT and pmaxT:
// the serial run processes [0, B); rank r of a parallel run processes its
// chunk, with the master's chunk containing index 0 (the observed
// labelling, Figure 2).  scratch may be nil, in which case temporary
// storage is allocated.
func Process(p *Prep, gen perm.Generator, lo, hi int64, c *Counts, scratch *Scratch) {
	if scratch == nil {
		scratch = p.NewScratch()
	}
	lab, z := scratch.lab, scratch.z
	order, obs := p.Order, p.Obs
	for idx := lo; idx < hi; idx++ {
		gen.Label(idx, lab)
		for i, row := range p.X {
			t := p.StatFn(row, lab)
			if math.IsNaN(t) {
				z[i] = math.Inf(-1) // never exceeds, never raises the max
			} else {
				z[i] = p.Side.transform(t)
			}
		}
		// Raw counts: per-row comparison.
		for i := range z {
			if !math.IsNaN(obs[i]) && z[i] >= obs[i] {
				c.Raw[i]++
			}
		}
		// Successive maxima from the least significant valid row upward.
		u := math.Inf(-1)
		for j := p.Valid - 1; j >= 0; j-- {
			r := order[j]
			if z[r] > u {
				u = z[r]
			}
			if u >= obs[r] {
				c.Adj[r]++
			}
		}
		c.B++
	}
}

// Result carries the outputs of a maxT run, in the original row order.
type Result struct {
	Stat  []float64 // observed (untransformed) statistics
	RawP  []float64 // unadjusted permutation p-values
	AdjP  []float64 // Westfall–Young step-down maxT adjusted p-values
	Order []int     // rows by decreasing significance
	B     int64     // permutations actually used (including the observed)
}

// Finalize converts merged counts into p-values.  Rows whose observed
// statistic was not computable receive NaN p-values.  Adjusted p-values are
// made monotone non-decreasing down the significance order, the step-down
// enforcement of Westfall & Young.
func Finalize(p *Prep, c *Counts) *Result {
	n := len(p.X)
	res := &Result{
		Stat:  append([]float64(nil), p.Stat...),
		RawP:  make([]float64, n),
		AdjP:  make([]float64, n),
		Order: append([]int(nil), p.Order...),
		B:     c.B,
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(p.Obs[i]) {
			res.RawP[i] = math.NaN()
			res.AdjP[i] = math.NaN()
		} else {
			res.RawP[i] = float64(c.Raw[i]) / float64(c.B)
		}
	}
	prev := 0.0
	for j := 0; j < p.Valid; j++ {
		r := p.Order[j]
		v := float64(c.Adj[r]) / float64(c.B)
		if v < prev {
			v = prev
		}
		res.AdjP[r] = v
		prev = v
	}
	return res
}

// Run executes a complete serial maxT computation over all permutations of
// gen: the reference mt.maxT behaviour.
func Run(p *Prep, gen perm.Generator) *Result {
	c := NewCounts(len(p.X))
	Process(p, gen, 0, gen.Total(), c, nil)
	return Finalize(p, c)
}
