// Package maxt implements the Westfall–Young step-down maxT multiple
// testing procedure that mt.maxT computes and pmaxT parallelises (Ge &
// Dudoit 2003; Westfall & Young 1993).
//
// The procedure: compute the observed test statistic for every row (gene),
// transform it according to the rejection-region side, and order rows by
// decreasing transformed statistic.  For each permutation of the column
// labels, recompute all statistics and form the successive maxima from the
// bottom of the ordered list upward; the adjusted p-value of a row is the
// fraction of permutations whose successive maximum at that row's position
// reaches the observed value.  A final pass enforces monotonicity down the
// ordered list.  Raw (unadjusted) p-values count per-row exceedances only.
//
// The package deliberately separates preparation (Prep), per-chunk counting
// (Process into Counts) and the final reduction (Finalize): this is exactly
// the split pmaxT needs, where each MPI rank processes a chunk of the
// permutation sequence and the master merges the partial counts — Steps 4
// and 5 of Section 3.2 of the paper.
package maxt

import (
	"fmt"
	"math"
	"sort"

	"sprint/internal/matrix"
	"sprint/internal/perm"
	"sprint/internal/stat"
)

// Side selects the rejection region, mirroring mt.maxT's side parameter.
type Side int

const (
	// Abs tests the absolute difference (side="abs", the default).
	Abs Side = iota
	// Upper tests the maximum (side="upper").
	Upper
	// Lower tests the minimum (side="lower").
	Lower
)

var sideNames = map[Side]string{Abs: "abs", Upper: "upper", Lower: "lower"}

// String returns the mt.maxT name of the side.
func (s Side) String() string {
	if n, ok := sideNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Side(%d)", int(s))
}

// ParseSide converts an mt.maxT side name into a Side.
func ParseSide(s string) (Side, error) {
	for side, name := range sideNames {
		if name == s {
			return side, nil
		}
	}
	return 0, fmt.Errorf("maxt: unknown side %q (want abs, upper or lower)", s)
}

// transform applies the side transform: statistics are compared on the
// transformed scale, where larger always means more extreme.
func (s Side) transform(v float64) float64 {
	switch s {
	case Abs:
		return math.Abs(v)
	case Lower:
		return -v
	default:
		return v
	}
}

// Prep bundles the immutable inputs of a maxT run: the (possibly
// rank-transformed) flat data matrix, the design, the batched statistics
// kernel, the observed statistics and the induced row order.  A Prep is
// safe for concurrent use; per-goroutine scratch lives in Scratch values.
type Prep struct {
	Design *stat.Design
	Side   Side
	M      matrix.Matrix                          // rows × columns, transformed flat copy
	Kernel stat.Kernel                            // batched engine; nil on reference preps
	StatFn func(row []float64, lab []int) float64 // legacy per-row evaluator

	Stat  []float64 // untransformed observed statistic per row
	Obs   []float64 // side-transformed observed statistic per row
	Order []int     // row indices by decreasing Obs; NaN rows at the end
	Valid int       // number of rows with a computable observed statistic

	// ref selects the retained pre-flat evaluation path: Process calls
	// StatFn row by row instead of the batched kernel.  Kept so the flat
	// refactor stays differentially testable against its predecessor.
	ref bool
}

// NewPrep adapts the legacy row-per-slice surface: it validates shape,
// flattens x into contiguous storage and defers to NewPrepMatrix.  The
// input matrix is not modified.
func NewPrep(x [][]float64, d *stat.Design, side Side, nonpara bool) (*Prep, error) {
	m, err := rowsToMatrix(x, d)
	if err != nil {
		return nil, err
	}
	return newPrep(m, d, side, nonpara, false)
}

// NewPrepMatrix builds the production prep over a flat matrix: it copies m,
// applies the rank transform when the test requires it (Wilcoxon) or when
// nonpara is set, builds the batched kernel with its precomputed per-row
// moments, computes observed statistics under the design's labelling, and
// derives the step-down order.  The input matrix is not modified.
func NewPrepMatrix(m matrix.Matrix, d *stat.Design, side Side, nonpara bool) (*Prep, error) {
	return newPrep(m.Clone(), d, side, nonpara, false)
}

// NewPrepReference builds a prep whose Process evaluates permutations
// through the legacy per-row statistic functions (Design.Func).  It exists
// to guard the flat-matrix kernels differentially: results must agree with
// NewPrepMatrix preps on the same inputs.
func NewPrepReference(m matrix.Matrix, d *stat.Design, side Side, nonpara bool) (*Prep, error) {
	return newPrep(m.Clone(), d, side, nonpara, true)
}

// rowsToMatrix validates the legacy [][]float64 shape against the design
// and flattens it, preserving the historical error messages.
func rowsToMatrix(x [][]float64, d *stat.Design) (matrix.Matrix, error) {
	if len(x) == 0 {
		return matrix.Matrix{}, fmt.Errorf("maxt: empty data matrix")
	}
	for i, row := range x {
		if len(row) != d.N {
			return matrix.Matrix{}, fmt.Errorf("maxt: row %d has %d columns, design has %d", i, len(row), d.N)
		}
	}
	m := matrix.New(len(x), d.N)
	for i, row := range x {
		copy(m.Row(i), row)
	}
	return m, nil
}

// newPrep consumes m (already a private copy owned by the prep).
func newPrep(m matrix.Matrix, d *stat.Design, side Side, nonpara bool, ref bool) (*Prep, error) {
	if m.IsEmpty() {
		return nil, fmt.Errorf("maxt: empty data matrix")
	}
	if m.Cols != d.N {
		return nil, fmt.Errorf("maxt: matrix has %d columns, design has %d", m.Cols, d.N)
	}
	if len(m.Data) != m.Rows*m.Cols {
		return nil, fmt.Errorf("maxt: matrix data has %d elements for %dx%d", len(m.Data), m.Rows, m.Cols)
	}
	p := &Prep{
		Design: d,
		Side:   side,
		M:      m,
		StatFn: d.Func(),
		ref:    ref,
	}
	if d.NeedsRanks() || nonpara {
		var scratch []int
		if m.Cols > 0 {
			scratch = make([]int, m.Cols)
		}
		for i := 0; i < m.Rows; i++ {
			stat.Ranks(m.Row(i), scratch)
		}
	}
	n := m.Rows
	p.Stat = make([]float64, n)
	p.Obs = make([]float64, n)
	if ref {
		for i := 0; i < n; i++ {
			p.Stat[i] = p.StatFn(m.Row(i), d.Labels)
		}
	} else {
		k, err := stat.NewKernel(d, m)
		if err != nil {
			return nil, err
		}
		p.Kernel = k
		k.Stats(d.Labels, p.Stat, nil)
	}
	for i, t := range p.Stat {
		if math.IsNaN(t) {
			p.Obs[i] = math.NaN()
		} else {
			p.Obs[i] = side.transform(t)
		}
	}
	p.Order = make([]int, n)
	for i := range p.Order {
		p.Order[i] = i
	}
	// Decreasing transformed statistic; NaN rows sink to the end; ties
	// break on row index so the order — and therefore the parallel
	// reduction — is deterministic.
	sort.SliceStable(p.Order, func(a, b int) bool {
		ra, rb := p.Order[a], p.Order[b]
		va, vb := p.Obs[ra], p.Obs[rb]
		na, nb := math.IsNaN(va), math.IsNaN(vb)
		switch {
		case na && nb:
			return ra < rb
		case na:
			return false
		case nb:
			return true
		case va != vb:
			return va > vb
		default:
			return ra < rb
		}
	})
	p.Valid = 0
	for _, r := range p.Order {
		if math.IsNaN(p.Obs[r]) {
			break
		}
		p.Valid++
	}
	return p, nil
}

// Rows returns the number of rows (genes) in the prepared matrix.
func (p *Prep) Rows() int { return p.M.Rows }

// Subset builds a prep over a subset of p's rows, given as matrix row
// indices in STEP-DOWN ORDER (a contiguous run of p.Order positions whose
// observed statistics are computable).  It exists for the sequential
// engine: once every row above a position has frozen, the remaining rows'
// successive maxima depend only on themselves, so the kernel may compute
// this smaller prep instead — ProcessBatched over the subset accumulates
// bit-for-bit the counts the full prep would have produced for the same
// rows, because the rows are byte copies of p's already-transformed
// matrix, the observed statistics are copied rather than recomputed, and
// the induced order is the identity by construction.
func (p *Prep) Subset(rows []int) (*Prep, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("maxt: empty row subset")
	}
	m := matrix.New(len(rows), p.M.Cols)
	sub := &Prep{
		Design: p.Design,
		Side:   p.Side,
		M:      m,
		StatFn: p.StatFn,
		Stat:   make([]float64, len(rows)),
		Obs:    make([]float64, len(rows)),
		Order:  make([]int, len(rows)),
		Valid:  len(rows),
		ref:    p.ref,
	}
	for i, r := range rows {
		if r < 0 || r >= p.M.Rows {
			return nil, fmt.Errorf("maxt: subset row %d outside matrix of %d rows", r, p.M.Rows)
		}
		if math.IsNaN(p.Obs[r]) {
			return nil, fmt.Errorf("maxt: subset row %d has no computable observed statistic", r)
		}
		copy(m.Row(i), p.M.Row(r))
		sub.Stat[i] = p.Stat[r]
		sub.Obs[i] = p.Obs[r]
		sub.Order[i] = i
	}
	if !p.ref {
		// The matrix rows are already rank-transformed where the test
		// demands it, exactly as the full prep's were when its kernel was
		// built, so the kernel sees identical per-row data and produces
		// identical statistics.
		k, err := stat.NewKernel(p.Design, m)
		if err != nil {
			return nil, err
		}
		sub.Kernel = k
	}
	return sub, nil
}

// Counts holds partial exceedance counts.  Raw[i] counts permutations whose
// statistic for row i reaches the observed one; Adj[i] counts permutations
// whose successive maximum at row i's ordered position reaches the observed
// statistic.  Counts from disjoint permutation chunks merge by addition —
// the global sum the master performs in Step 5.
type Counts struct {
	Raw []int64
	Adj []int64
	B   int64 // permutations accumulated
}

// NewCounts returns zeroed counts for n rows.
func NewCounts(n int) *Counts {
	return &Counts{Raw: make([]int64, n), Adj: make([]int64, n)}
}

// Merge adds o into c.
func (c *Counts) Merge(o *Counts) {
	if len(o.Raw) != len(c.Raw) {
		panic("maxt: merging counts of different sizes")
	}
	for i := range c.Raw {
		c.Raw[i] += o.Raw[i]
		c.Adj[i] += o.Adj[i]
	}
	c.B += o.B
}

// Reset zeroes c for n rows, reusing its buffers when they are large
// enough — the counterpart of ScratchFrom for per-worker count reuse.
func (c *Counts) Reset(n int) {
	if cap(c.Raw) < n {
		c.Raw = make([]int64, n)
		c.Adj = make([]int64, n)
	} else {
		c.Raw = c.Raw[:n]
		c.Adj = c.Adj[:n]
		clear(c.Raw)
		clear(c.Adj)
	}
	c.B = 0
}

// Scratch holds per-goroutine working storage for Process and
// ProcessBatched, so concurrent chunks never share mutable state.  The
// batch fields are sized lazily by ProcessBatched and retain their
// capacity across preps (see ScratchFrom), which is what makes the jobs
// worker path allocation-free in steady state.
type Scratch struct {
	lab []int
	z   []float64
	ks  *stat.KernelScratch

	labs  []int              // batch × N flat labellings
	zb    []float64          // batch × rows statistics (backing store)
	moves []stat.Exchange    // batch-1 delta moves (revolving-door path)
	bks   *stat.BatchScratch // grow-on-demand batch kernel scratch
}

// NewScratch sizes scratch space for the given prep.
func (p *Prep) NewScratch() *Scratch {
	return p.ScratchFrom(nil)
}

// ScratchFrom sizes scratch space for the prep, reusing prev's buffers
// (possibly sized for a different prep) when their capacity suffices.  A
// long-lived worker passes its previous scratch between jobs so that
// steady-state processing allocates nothing.
func (p *Prep) ScratchFrom(prev *Scratch) *Scratch {
	s := prev
	if s == nil {
		s = &Scratch{}
	}
	if cap(s.lab) < p.Design.N {
		s.lab = make([]int, p.Design.N)
	} else {
		s.lab = s.lab[:p.Design.N]
	}
	if cap(s.z) < p.M.Rows {
		s.z = make([]float64, p.M.Rows)
	} else {
		s.z = s.z[:p.M.Rows]
	}
	// The scalar kernel scratch is sized lazily by Process: the batched
	// path (the default) never needs it, so eagerly rebuilding it here
	// would charge every job an allocation it never uses.
	s.ks = nil
	if s.bks == nil {
		s.bks = &stat.BatchScratch{}
	}
	return s
}

// ensureBatch sizes the batch buffers for batches of up to batch
// labellings, reusing capacity.
func (p *Prep) ensureBatch(s *Scratch, batch int) {
	need := batch * p.Design.N
	if cap(s.labs) < need {
		s.labs = make([]int, need)
	} else {
		s.labs = s.labs[:need]
	}
	zneed := batch * p.M.Rows
	if cap(s.zb) < zneed {
		s.zb = make([]float64, zneed)
	} else {
		s.zb = s.zb[:zneed]
	}
	if cap(s.moves) < batch-1 {
		s.moves = make([]stat.Exchange, batch-1)
	}
	if s.bks == nil {
		s.bks = &stat.BatchScratch{}
	}
}

// Process accumulates exceedance counts for permutation indices [lo, hi) of
// gen into c.  It is the computational kernel of both mt.maxT and pmaxT:
// the serial run processes [0, B); rank r of a parallel run processes its
// chunk, with the master's chunk containing index 0 (the observed
// labelling, Figure 2).  Statistics for all rows are evaluated by one
// batched kernel call per permutation (or row by row through StatFn on
// reference preps).  scratch may be nil, in which case temporary storage
// is allocated.
func Process(p *Prep, gen perm.Generator, lo, hi int64, c *Counts, scratch *Scratch) {
	if scratch == nil {
		scratch = p.NewScratch()
	}
	if scratch.ks == nil && p.Kernel != nil && lo < hi {
		scratch.ks = p.Kernel.NewScratch()
	}
	lab, z := scratch.lab, scratch.z
	for idx := lo; idx < hi; idx++ {
		gen.Label(idx, lab)
		if p.ref {
			for i := 0; i < p.M.Rows; i++ {
				z[i] = p.StatFn(p.M.Row(i), lab)
			}
		} else {
			p.Kernel.Stats(lab, z, scratch.ks)
		}
		p.countPermutation(z, c)
	}
}

// countPermutation side-transforms one permutation's statistics in place
// and accumulates its raw and step-down counts into c.  It is the single
// counting path shared by the scalar and batched loops, so the two cannot
// diverge.
func (p *Prep) countPermutation(z []float64, c *Counts) {
	order, obs := p.Order, p.Obs
	for i, t := range z {
		if math.IsNaN(t) {
			z[i] = math.Inf(-1) // never exceeds, never raises the max
		} else {
			z[i] = p.Side.transform(t)
		}
	}
	// Raw counts: per-row comparison.
	for i := range z {
		if !math.IsNaN(obs[i]) && z[i] >= obs[i] {
			c.Raw[i]++
		}
	}
	// Successive maxima from the least significant valid row upward.
	u := math.Inf(-1)
	for j := p.Valid - 1; j >= 0; j-- {
		r := order[j]
		if z[r] > u {
			u = z[r]
		}
		if u >= obs[r] {
			c.Adj[r]++
		}
	}
	c.B++
}

// ProcessBatched is Process with the permutation loop inverted: the chunk
// [lo, hi) is evaluated in batches of up to batch labellings through the
// kernel's StatsBatch, so each matrix row is read once per batch instead
// of once per permutation.  The counting pass per permutation is shared
// with Process (countPermutation) and StatsBatch is bitwise identical to
// Stats, so the accumulated counts are exactly those of Process for every
// batch size; batch <= 1 (or a reference prep, whose kernel is nil) falls
// back to the scalar loop.
//
// When the generator emits single-exchange deltas (perm.RevolvingDoor)
// AND the kernel can evaluate them exactly (stat.DeltaKernel on integer
// rank data), each batch is driven through StatsDelta instead: one
// subtract and one add per (row, permutation) in place of the O(n1)
// column scatter.  StatsDelta is bitwise identical to StatsBatch on the
// materialised labellings, so the fast path changes wall time only —
// counts, p-values, cache keys and checkpoints are unaffected.
func ProcessBatched(p *Prep, gen perm.Generator, lo, hi int64, c *Counts, scratch *Scratch, batch int) {
	bk, ok := p.Kernel.(stat.BatchKernel)
	if batch <= 1 || !ok || lo >= hi {
		Process(p, gen, lo, hi, c, scratch)
		return
	}
	if scratch == nil {
		scratch = p.NewScratch()
	}
	if span := hi - lo; int64(batch) > span {
		batch = int(span)
	}
	p.ensureBatch(scratch, batch)
	dk, okDK := p.Kernel.(stat.DeltaKernel)
	dg, okDG := gen.(perm.DeltaGenerator)
	useDelta := okDK && okDG && dk.DeltaOK()
	n, rows := p.Design.N, p.M.Rows
	for base := lo; base < hi; base += int64(batch) {
		nb := batch
		if rem := hi - base; int64(nb) > rem {
			nb = int(rem)
		}
		out := matrix.Matrix{Data: scratch.zb[:nb*rows], Rows: nb, Cols: rows}
		if useDelta {
			lab0 := scratch.lab
			moves := scratch.moves[:nb-1]
			dg.LabelsDelta(base, int64(nb), lab0, moves)
			dk.StatsDelta(lab0, moves, out, scratch.bks)
		} else {
			labs := scratch.labs[:nb*n]
			gen.Labels(base, int64(nb), labs)
			bk.StatsBatch(labs, out, scratch.bks)
		}
		for bp := 0; bp < nb; bp++ {
			p.countPermutation(out.Row(bp), c)
		}
	}
}

// Result carries the outputs of a maxT run, in the original row order.
type Result struct {
	Stat  []float64 // observed (untransformed) statistics
	RawP  []float64 // unadjusted permutation p-values
	AdjP  []float64 // Westfall–Young step-down maxT adjusted p-values
	Order []int     // rows by decreasing significance
	B     int64     // permutations actually used (including the observed)
}

// Finalize converts merged counts into p-values.  Rows whose observed
// statistic was not computable receive NaN p-values.  Adjusted p-values are
// made monotone non-decreasing down the significance order, the step-down
// enforcement of Westfall & Young.
func Finalize(p *Prep, c *Counts) *Result {
	n := p.M.Rows
	res := &Result{
		Stat:  append([]float64(nil), p.Stat...),
		RawP:  make([]float64, n),
		AdjP:  make([]float64, n),
		Order: append([]int(nil), p.Order...),
		B:     c.B,
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(p.Obs[i]) {
			res.RawP[i] = math.NaN()
			res.AdjP[i] = math.NaN()
		} else {
			res.RawP[i] = float64(c.Raw[i]) / float64(c.B)
		}
	}
	prev := 0.0
	for j := 0; j < p.Valid; j++ {
		r := p.Order[j]
		v := float64(c.Adj[r]) / float64(c.B)
		if v < prev {
			v = prev
		}
		res.AdjP[r] = v
		prev = v
	}
	return res
}

// FinalizeEffective is Finalize for sequentially stopped runs: row r's
// counts cover its own prefix [0, bEff[r]) of the permutation sequence
// rather than a shared B, so each p-value divides by its row's effective
// count.  Rows with bEff[r] == 0 (no computable statistic) receive NaN.
// The step-down monotonicity enforcement is unchanged: adjusted p-values
// are made non-decreasing down the significance order.
func FinalizeEffective(p *Prep, c *Counts, bEff []int64) *Result {
	n := p.M.Rows
	res := &Result{
		Stat:  append([]float64(nil), p.Stat...),
		RawP:  make([]float64, n),
		AdjP:  make([]float64, n),
		Order: append([]int(nil), p.Order...),
		B:     c.B,
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(p.Obs[i]) || bEff[i] <= 0 {
			res.RawP[i] = math.NaN()
			res.AdjP[i] = math.NaN()
		} else {
			res.RawP[i] = float64(c.Raw[i]) / float64(bEff[i])
		}
	}
	prev := 0.0
	for j := 0; j < p.Valid; j++ {
		r := p.Order[j]
		if bEff[r] <= 0 {
			continue
		}
		v := float64(c.Adj[r]) / float64(bEff[r])
		if v < prev {
			v = prev
		}
		res.AdjP[r] = v
		prev = v
	}
	return res
}

// Run executes a complete serial maxT computation over all permutations of
// gen: the reference mt.maxT behaviour.
func Run(p *Prep, gen perm.Generator) *Result {
	c := NewCounts(p.M.Rows)
	Process(p, gen, 0, gen.Total(), c, nil)
	return Finalize(p, c)
}
