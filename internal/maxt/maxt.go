// Package maxt implements the Westfall–Young step-down maxT multiple
// testing procedure that mt.maxT computes and pmaxT parallelises (Ge &
// Dudoit 2003; Westfall & Young 1993).
//
// The procedure: compute the observed test statistic for every row (gene),
// transform it according to the rejection-region side, and order rows by
// decreasing transformed statistic.  For each permutation of the column
// labels, recompute all statistics and form the successive maxima from the
// bottom of the ordered list upward; the adjusted p-value of a row is the
// fraction of permutations whose successive maximum at that row's position
// reaches the observed value.  A final pass enforces monotonicity down the
// ordered list.  Raw (unadjusted) p-values count per-row exceedances only.
//
// The package deliberately separates preparation (Prep), per-chunk counting
// (Process into Counts) and the final reduction (Finalize): this is exactly
// the split pmaxT needs, where each MPI rank processes a chunk of the
// permutation sequence and the master merges the partial counts — Steps 4
// and 5 of Section 3.2 of the paper.
package maxt

import (
	"fmt"
	"math"
	"sort"

	"sprint/internal/matrix"
	"sprint/internal/perm"
	"sprint/internal/stat"
)

// Side selects the rejection region, mirroring mt.maxT's side parameter.
type Side int

const (
	// Abs tests the absolute difference (side="abs", the default).
	Abs Side = iota
	// Upper tests the maximum (side="upper").
	Upper
	// Lower tests the minimum (side="lower").
	Lower
)

var sideNames = map[Side]string{Abs: "abs", Upper: "upper", Lower: "lower"}

// String returns the mt.maxT name of the side.
func (s Side) String() string {
	if n, ok := sideNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Side(%d)", int(s))
}

// ParseSide converts an mt.maxT side name into a Side.
func ParseSide(s string) (Side, error) {
	for side, name := range sideNames {
		if name == s {
			return side, nil
		}
	}
	return 0, fmt.Errorf("maxt: unknown side %q (want abs, upper or lower)", s)
}

// transform applies the side transform: statistics are compared on the
// transformed scale, where larger always means more extreme.
func (s Side) transform(v float64) float64 {
	switch s {
	case Abs:
		return math.Abs(v)
	case Lower:
		return -v
	default:
		return v
	}
}

// Prep bundles the immutable inputs of a maxT run: the (possibly
// rank-transformed) flat data matrix, the design, the batched statistics
// kernel, the observed statistics and the induced row order.  A Prep is
// safe for concurrent use; per-goroutine scratch lives in Scratch values.
type Prep struct {
	Design *stat.Design
	Side   Side
	M      matrix.Matrix                          // rows × columns, transformed flat copy
	Kernel stat.Kernel                            // batched engine; nil on reference preps
	StatFn func(row []float64, lab []int) float64 // legacy per-row evaluator

	Stat  []float64 // untransformed observed statistic per row
	Obs   []float64 // side-transformed observed statistic per row
	Order []int     // row indices by decreasing Obs; NaN rows at the end
	Valid int       // number of rows with a computable observed statistic

	// ref selects the retained pre-flat evaluation path: Process calls
	// StatFn row by row instead of the batched kernel.  Kept so the flat
	// refactor stays differentially testable against its predecessor.
	ref bool
}

// NewPrep adapts the legacy row-per-slice surface: it validates shape,
// flattens x into contiguous storage and defers to NewPrepMatrix.  The
// input matrix is not modified.
func NewPrep(x [][]float64, d *stat.Design, side Side, nonpara bool) (*Prep, error) {
	m, err := rowsToMatrix(x, d)
	if err != nil {
		return nil, err
	}
	return newPrep(m, d, side, nonpara, false)
}

// NewPrepMatrix builds the production prep over a flat matrix: it copies m,
// applies the rank transform when the test requires it (Wilcoxon) or when
// nonpara is set, builds the batched kernel with its precomputed per-row
// moments, computes observed statistics under the design's labelling, and
// derives the step-down order.  The input matrix is not modified.
func NewPrepMatrix(m matrix.Matrix, d *stat.Design, side Side, nonpara bool) (*Prep, error) {
	return newPrep(m.Clone(), d, side, nonpara, false)
}

// NewPrepReference builds a prep whose Process evaluates permutations
// through the legacy per-row statistic functions (Design.Func).  It exists
// to guard the flat-matrix kernels differentially: results must agree with
// NewPrepMatrix preps on the same inputs.
func NewPrepReference(m matrix.Matrix, d *stat.Design, side Side, nonpara bool) (*Prep, error) {
	return newPrep(m.Clone(), d, side, nonpara, true)
}

// rowsToMatrix validates the legacy [][]float64 shape against the design
// and flattens it, preserving the historical error messages.
func rowsToMatrix(x [][]float64, d *stat.Design) (matrix.Matrix, error) {
	if len(x) == 0 {
		return matrix.Matrix{}, fmt.Errorf("maxt: empty data matrix")
	}
	for i, row := range x {
		if len(row) != d.N {
			return matrix.Matrix{}, fmt.Errorf("maxt: row %d has %d columns, design has %d", i, len(row), d.N)
		}
	}
	m := matrix.New(len(x), d.N)
	for i, row := range x {
		copy(m.Row(i), row)
	}
	return m, nil
}

// newPrep consumes m (already a private copy owned by the prep).
func newPrep(m matrix.Matrix, d *stat.Design, side Side, nonpara bool, ref bool) (*Prep, error) {
	if m.IsEmpty() {
		return nil, fmt.Errorf("maxt: empty data matrix")
	}
	if m.Cols != d.N {
		return nil, fmt.Errorf("maxt: matrix has %d columns, design has %d", m.Cols, d.N)
	}
	if len(m.Data) != m.Rows*m.Cols {
		return nil, fmt.Errorf("maxt: matrix data has %d elements for %dx%d", len(m.Data), m.Rows, m.Cols)
	}
	p := &Prep{
		Design: d,
		Side:   side,
		M:      m,
		StatFn: d.Func(),
		ref:    ref,
	}
	if d.NeedsRanks() || nonpara {
		var scratch []int
		if m.Cols > 0 {
			scratch = make([]int, m.Cols)
		}
		for i := 0; i < m.Rows; i++ {
			stat.Ranks(m.Row(i), scratch)
		}
	}
	n := m.Rows
	p.Stat = make([]float64, n)
	p.Obs = make([]float64, n)
	if ref {
		for i := 0; i < n; i++ {
			p.Stat[i] = p.StatFn(m.Row(i), d.Labels)
		}
	} else {
		k, err := stat.NewKernel(d, m)
		if err != nil {
			return nil, err
		}
		p.Kernel = k
		k.Stats(d.Labels, p.Stat, nil)
	}
	for i, t := range p.Stat {
		if math.IsNaN(t) {
			p.Obs[i] = math.NaN()
		} else {
			p.Obs[i] = side.transform(t)
		}
	}
	p.Order = make([]int, n)
	for i := range p.Order {
		p.Order[i] = i
	}
	// Decreasing transformed statistic; NaN rows sink to the end; ties
	// break on row index so the order — and therefore the parallel
	// reduction — is deterministic.
	sort.SliceStable(p.Order, func(a, b int) bool {
		ra, rb := p.Order[a], p.Order[b]
		va, vb := p.Obs[ra], p.Obs[rb]
		na, nb := math.IsNaN(va), math.IsNaN(vb)
		switch {
		case na && nb:
			return ra < rb
		case na:
			return false
		case nb:
			return true
		case va != vb:
			return va > vb
		default:
			return ra < rb
		}
	})
	p.Valid = 0
	for _, r := range p.Order {
		if math.IsNaN(p.Obs[r]) {
			break
		}
		p.Valid++
	}
	return p, nil
}

// Rows returns the number of rows (genes) in the prepared matrix.
func (p *Prep) Rows() int { return p.M.Rows }

// Counts holds partial exceedance counts.  Raw[i] counts permutations whose
// statistic for row i reaches the observed one; Adj[i] counts permutations
// whose successive maximum at row i's ordered position reaches the observed
// statistic.  Counts from disjoint permutation chunks merge by addition —
// the global sum the master performs in Step 5.
type Counts struct {
	Raw []int64
	Adj []int64
	B   int64 // permutations accumulated
}

// NewCounts returns zeroed counts for n rows.
func NewCounts(n int) *Counts {
	return &Counts{Raw: make([]int64, n), Adj: make([]int64, n)}
}

// Merge adds o into c.
func (c *Counts) Merge(o *Counts) {
	if len(o.Raw) != len(c.Raw) {
		panic("maxt: merging counts of different sizes")
	}
	for i := range c.Raw {
		c.Raw[i] += o.Raw[i]
		c.Adj[i] += o.Adj[i]
	}
	c.B += o.B
}

// Scratch holds per-goroutine working storage for Process, so concurrent
// chunks never share mutable state.
type Scratch struct {
	lab []int
	z   []float64
	ks  *stat.KernelScratch
}

// NewScratch sizes scratch space for the given prep.
func (p *Prep) NewScratch() *Scratch {
	s := &Scratch{
		lab: make([]int, p.Design.N),
		z:   make([]float64, p.M.Rows),
	}
	if p.Kernel != nil {
		s.ks = p.Kernel.NewScratch()
	}
	return s
}

// Process accumulates exceedance counts for permutation indices [lo, hi) of
// gen into c.  It is the computational kernel of both mt.maxT and pmaxT:
// the serial run processes [0, B); rank r of a parallel run processes its
// chunk, with the master's chunk containing index 0 (the observed
// labelling, Figure 2).  Statistics for all rows are evaluated by one
// batched kernel call per permutation (or row by row through StatFn on
// reference preps).  scratch may be nil, in which case temporary storage
// is allocated.
func Process(p *Prep, gen perm.Generator, lo, hi int64, c *Counts, scratch *Scratch) {
	if scratch == nil {
		scratch = p.NewScratch()
	}
	lab, z := scratch.lab, scratch.z
	order, obs := p.Order, p.Obs
	for idx := lo; idx < hi; idx++ {
		gen.Label(idx, lab)
		if p.ref {
			for i := 0; i < p.M.Rows; i++ {
				z[i] = p.StatFn(p.M.Row(i), lab)
			}
		} else {
			p.Kernel.Stats(lab, z, scratch.ks)
		}
		for i, t := range z {
			if math.IsNaN(t) {
				z[i] = math.Inf(-1) // never exceeds, never raises the max
			} else {
				z[i] = p.Side.transform(t)
			}
		}
		// Raw counts: per-row comparison.
		for i := range z {
			if !math.IsNaN(obs[i]) && z[i] >= obs[i] {
				c.Raw[i]++
			}
		}
		// Successive maxima from the least significant valid row upward.
		u := math.Inf(-1)
		for j := p.Valid - 1; j >= 0; j-- {
			r := order[j]
			if z[r] > u {
				u = z[r]
			}
			if u >= obs[r] {
				c.Adj[r]++
			}
		}
		c.B++
	}
}

// Result carries the outputs of a maxT run, in the original row order.
type Result struct {
	Stat  []float64 // observed (untransformed) statistics
	RawP  []float64 // unadjusted permutation p-values
	AdjP  []float64 // Westfall–Young step-down maxT adjusted p-values
	Order []int     // rows by decreasing significance
	B     int64     // permutations actually used (including the observed)
}

// Finalize converts merged counts into p-values.  Rows whose observed
// statistic was not computable receive NaN p-values.  Adjusted p-values are
// made monotone non-decreasing down the significance order, the step-down
// enforcement of Westfall & Young.
func Finalize(p *Prep, c *Counts) *Result {
	n := p.M.Rows
	res := &Result{
		Stat:  append([]float64(nil), p.Stat...),
		RawP:  make([]float64, n),
		AdjP:  make([]float64, n),
		Order: append([]int(nil), p.Order...),
		B:     c.B,
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(p.Obs[i]) {
			res.RawP[i] = math.NaN()
			res.AdjP[i] = math.NaN()
		} else {
			res.RawP[i] = float64(c.Raw[i]) / float64(c.B)
		}
	}
	prev := 0.0
	for j := 0; j < p.Valid; j++ {
		r := p.Order[j]
		v := float64(c.Adj[r]) / float64(c.B)
		if v < prev {
			v = prev
		}
		res.AdjP[r] = v
		prev = v
	}
	return res
}

// Run executes a complete serial maxT computation over all permutations of
// gen: the reference mt.maxT behaviour.
func Run(p *Prep, gen perm.Generator) *Result {
	c := NewCounts(p.M.Rows)
	Process(p, gen, 0, gen.Total(), c, nil)
	return Finalize(p, c)
}
