package maxt

import (
	"math"
	"testing"
	"testing/quick"

	"sprint/internal/perm"
	"sprint/internal/stat"
)

func mustPrep(t *testing.T, x [][]float64, test stat.Test, labels []int, side Side) *Prep {
	t.Helper()
	d, err := stat.NewDesign(test, labels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrep(x, d, side, false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// --- independent reference implementation ------------------------------

// refWelch recomputes the Welch t with plain two-pass formulas, sharing no
// code with internal/stat.
func refWelch(row []float64, lab []int) float64 {
	var s0, s1 float64
	var n0, n1 int
	for j, v := range row {
		if math.IsNaN(v) {
			continue
		}
		if lab[j] == 0 {
			s0 += v
			n0++
		} else {
			s1 += v
			n1++
		}
	}
	if n0 < 2 || n1 < 2 {
		return math.NaN()
	}
	m0, m1 := s0/float64(n0), s1/float64(n1)
	var v0, v1 float64
	for j, v := range row {
		if math.IsNaN(v) {
			continue
		}
		if lab[j] == 0 {
			v0 += (v - m0) * (v - m0)
		} else {
			v1 += (v - m1) * (v - m1)
		}
	}
	v0 /= float64(n0 - 1)
	v1 /= float64(n1 - 1)
	se := math.Sqrt(v0/float64(n0) + v1/float64(n1))
	if se == 0 {
		return math.NaN()
	}
	return (m1 - m0) / se
}

// refMaxT computes raw and adjusted maxT p-values over an explicit list of
// labellings (the first being the observed one), straight from the Ge &
// Dudoit definition, with no shared code.
func refMaxT(x [][]float64, labellings [][]int, side Side) (rawp, adjp []float64) {
	n := len(x)
	B := len(labellings)
	tr := func(v float64) float64 {
		switch side {
		case Abs:
			return math.Abs(v)
		case Lower:
			return -v
		default:
			return v
		}
	}
	obs := make([]float64, n)
	for i := range x {
		obs[i] = tr(refWelch(x[i], labellings[0]))
	}
	// Order by decreasing obs (insertion sort, ties by index).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if obs[b] > obs[a] || (obs[b] == obs[a] && b < a) {
				order[j-1], order[j] = b, a
			}
		}
	}
	rawCount := make([]int, n)
	adjCount := make([]int, n)
	for _, lab := range labellings {
		z := make([]float64, n)
		for i := range x {
			z[i] = tr(refWelch(x[i], lab))
			if math.IsNaN(z[i]) {
				z[i] = math.Inf(-1)
			}
		}
		for i := range z {
			if z[i] >= obs[i] {
				rawCount[i]++
			}
		}
		u := math.Inf(-1)
		for j := n - 1; j >= 0; j-- {
			r := order[j]
			if z[r] > u {
				u = z[r]
			}
			if u >= obs[r] {
				adjCount[r]++
			}
		}
	}
	rawp = make([]float64, n)
	adjp = make([]float64, n)
	for i := range rawp {
		rawp[i] = float64(rawCount[i]) / float64(B)
	}
	prev := 0.0
	for _, r := range order {
		v := float64(adjCount[r]) / float64(B)
		if v < prev {
			v = prev
		}
		adjp[r] = v
		prev = v
	}
	return rawp, adjp
}

// enumerate all labellings for a two-class design, observed first.
func allTwoClassLabellings(labels []int) [][]int {
	n := len(labels)
	n1 := 0
	for _, l := range labels {
		n1 += l
	}
	var out [][]int
	out = append(out, append([]int(nil), labels...))
	var rec func(start, left int, cur []int)
	var positions []int
	rec = func(start, left int, cur []int) {
		if left == 0 {
			lab := make([]int, n)
			for _, p := range cur {
				lab[p] = 1
			}
			same := true
			for i := range lab {
				if lab[i] != labels[i] {
					same = false
					break
				}
			}
			if !same {
				out = append(out, lab)
			}
			return
		}
		for p := start; p <= n-left; p++ {
			rec(p+1, left-1, append(cur, p))
		}
	}
	rec(0, n1, positions)
	return out
}

// --- tests ---------------------------------------------------------------

// tinyX uses generic values (all distinct, irregular digits) so that no two
// labellings produce statistics within floating-point rounding of each
// other except the exact mirror-symmetry ties both implementations resolve
// identically.  Knife-edge ties would otherwise let the Welford-based
// implementation and the two-pass reference disagree on >= comparisons.
var tinyX = [][]float64{
	{9.137, 8.7411, 9.3087, 1.2733, 1.0241, 1.4139},  // strongly differential
	{5.0319, 4.8157, 5.1731, 4.9213, 5.2677, 5.0887}, // null
	{2.0443, 2.2371, 1.9219, 3.1357, 2.9533, 3.0641}, // mildly differential
	{7.0129, 6.5237, 7.2341, 6.8431, 7.1543, 6.6719}, // null
}

var tinyLabels = []int{0, 0, 0, 1, 1, 1}

func TestRunMatchesReferenceOnCompleteEnumeration(t *testing.T) {
	for _, side := range []Side{Abs, Upper, Lower} {
		p := mustPrep(t, tinyX, stat.Welch, tinyLabels, side)
		gen, err := perm.NewComplete(p.Design)
		if err != nil {
			t.Fatal(err)
		}
		got := Run(p, gen)
		wantRaw, wantAdj := refMaxT(tinyX, allTwoClassLabellings(tinyLabels), side)
		if got.B != 20 {
			t.Fatalf("side %v: B = %d, want 20 (C(6,3))", side, got.B)
		}
		for i := range tinyX {
			if math.Abs(got.RawP[i]-wantRaw[i]) > 1e-12 {
				t.Errorf("side %v row %d: rawp = %v, want %v", side, i, got.RawP[i], wantRaw[i])
			}
			if math.Abs(got.AdjP[i]-wantAdj[i]) > 1e-12 {
				t.Errorf("side %v row %d: adjp = %v, want %v", side, i, got.AdjP[i], wantAdj[i])
			}
		}
	}
}

func TestChunkedCountsEqualSerialCounts(t *testing.T) {
	// The parallel invariant (Figure 2): processing the permutation
	// sequence in disjoint chunks and merging the counts must reproduce
	// the serial result exactly, for every generator type.
	d, _ := stat.NewDesign(stat.Welch, tinyLabels)
	p, _ := NewPrep(tinyX, d, Abs, false)

	gens := map[string]perm.Generator{
		"random": perm.NewRandom(d, 42, 101),
	}
	if g, err := perm.NewComplete(d); err == nil {
		gens["complete"] = g
	}
	for name, gen := range gens {
		B := gen.Total()
		serial := NewCounts(len(tinyX))
		Process(p, gen, 0, B, serial, nil)

		merged := NewCounts(len(tinyX))
		bounds := []int64{0, B / 4, B / 2, 3 * B / 4, B}
		for w := 0; w < 4; w++ {
			part := NewCounts(len(tinyX))
			Process(p, gen, bounds[w], bounds[w+1], part, nil)
			merged.Merge(part)
		}
		if merged.B != serial.B {
			t.Fatalf("%s: merged B=%d, serial B=%d", name, merged.B, serial.B)
		}
		for i := range serial.Raw {
			if serial.Raw[i] != merged.Raw[i] || serial.Adj[i] != merged.Adj[i] {
				t.Errorf("%s row %d: serial (raw=%d,adj=%d) != merged (raw=%d,adj=%d)",
					name, i, serial.Raw[i], serial.Adj[i], merged.Raw[i], merged.Adj[i])
			}
		}
	}
}

func TestStoredGeneratorChunkedEqualsSerial(t *testing.T) {
	d, _ := stat.NewDesign(stat.Welch, tinyLabels)
	p, _ := NewPrep(tinyX, d, Abs, false)
	const B = 61
	serialGen := perm.NewStored(d, 9, B, 0, B)
	serial := NewCounts(len(tinyX))
	Process(p, serialGen, 0, B, serial, nil)

	merged := NewCounts(len(tinyX))
	bounds := []int64{0, 21, 41, B}
	for w := 0; w < 3; w++ {
		lo, hi := bounds[w], bounds[w+1]
		gen := perm.NewStored(d, 9, B, lo, hi)
		part := NewCounts(len(tinyX))
		Process(p, gen, lo, hi, part, nil)
		merged.Merge(part)
	}
	for i := range serial.Raw {
		if serial.Raw[i] != merged.Raw[i] || serial.Adj[i] != merged.Adj[i] {
			t.Errorf("row %d: stored chunked counts differ from serial", i)
		}
	}
}

func TestPValuesAtLeastOneOverB(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	gen := perm.NewRandom(p.Design, 7, 200)
	res := Run(p, gen)
	for i := range tinyX {
		if res.RawP[i] < 1.0/float64(res.B) {
			t.Errorf("row %d: rawp = %v < 1/B", i, res.RawP[i])
		}
		if res.AdjP[i] < res.RawP[i]-1e-12 {
			t.Errorf("row %d: adjp %v < rawp %v", i, res.AdjP[i], res.RawP[i])
		}
		if res.RawP[i] > 1 || res.AdjP[i] > 1 {
			t.Errorf("row %d: p-values out of [1/B, 1]: raw=%v adj=%v", i, res.RawP[i], res.AdjP[i])
		}
	}
}

func TestAdjustedMonotoneAlongOrder(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	res := Run(p, perm.NewRandom(p.Design, 3, 500))
	prev := 0.0
	for _, r := range res.Order {
		if math.IsNaN(res.AdjP[r]) {
			break
		}
		if res.AdjP[r] < prev {
			t.Fatalf("adjusted p-values not monotone along order: %v after %v", res.AdjP[r], prev)
		}
		prev = res.AdjP[r]
	}
}

func TestDifferentialGeneRanksFirst(t *testing.T) {
	p := mustPrep(t, tinyX, stat.Welch, tinyLabels, Abs)
	res := Run(p, perm.NewRandom(p.Design, 11, 1000))
	if res.Order[0] != 0 {
		t.Errorf("most significant row = %d, want 0 (the spiked gene)", res.Order[0])
	}
	if res.AdjP[0] >= res.AdjP[1] {
		t.Errorf("spiked gene adjp %v not below null gene adjp %v", res.AdjP[0], res.AdjP[1])
	}
}

func TestNaNRowHandling(t *testing.T) {
	nan := math.NaN()
	x := [][]float64{
		{9, 8, 9, 1, 1, 2},
		{nan, nan, nan, nan, nan, nan}, // uncomputable row
		{5, 5, 6, 5, 6, 5},
	}
	p := mustPrep(t, x, stat.Welch, tinyLabels, Abs)
	if p.Valid != 2 {
		t.Fatalf("Valid = %d, want 2", p.Valid)
	}
	res := Run(p, perm.NewRandom(p.Design, 5, 100))
	if !math.IsNaN(res.RawP[1]) || !math.IsNaN(res.AdjP[1]) {
		t.Errorf("NaN row p-values = (%v, %v), want NaN", res.RawP[1], res.AdjP[1])
	}
	if math.IsNaN(res.RawP[0]) || math.IsNaN(res.RawP[2]) {
		t.Error("valid rows received NaN p-values")
	}
	if res.Order[2] != 1 {
		t.Errorf("NaN row not ordered last: order = %v", res.Order)
	}
}

func TestSideTransforms(t *testing.T) {
	// Row 0 has group 1 << group 0, so it is extreme for "lower" but not
	// for "upper".
	x := [][]float64{
		{9, 8, 9, 1, 1, 2},
		{1, 2, 1, 9, 8, 9},
	}
	pu := mustPrep(t, x, stat.Welch, tinyLabels, Upper)
	pl := mustPrep(t, x, stat.Welch, tinyLabels, Lower)
	genU, _ := perm.NewComplete(pu.Design)
	resU := Run(pu, genU)
	genL, _ := perm.NewComplete(pl.Design)
	resL := Run(pl, genL)
	if resU.RawP[1] >= resU.RawP[0] {
		t.Errorf("upper: positive-shift row should be more significant: %v vs %v", resU.RawP[1], resU.RawP[0])
	}
	if resL.RawP[0] >= resL.RawP[1] {
		t.Errorf("lower: negative-shift row should be more significant: %v vs %v", resL.RawP[0], resL.RawP[1])
	}
}

func TestParseSideRoundTrip(t *testing.T) {
	for _, s := range []Side{Abs, Upper, Lower} {
		got, err := ParseSide(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSide(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSide("two-sided"); err == nil {
		t.Error("ParseSide accepted unknown side")
	}
}

func TestNewPrepValidation(t *testing.T) {
	d, _ := stat.NewDesign(stat.Welch, tinyLabels)
	if _, err := NewPrep(nil, d, Abs, false); err == nil {
		t.Error("NewPrep accepted empty matrix")
	}
	if _, err := NewPrep([][]float64{{1, 2}}, d, Abs, false); err == nil {
		t.Error("NewPrep accepted ragged matrix")
	}
}

func TestNewPrepDoesNotModifyInput(t *testing.T) {
	x := [][]float64{{3, 1, 2, 5, 4, 6}}
	orig := append([]float64(nil), x[0]...)
	d, _ := stat.NewDesign(stat.Wilcoxon, tinyLabels)
	if _, err := NewPrep(x, d, Abs, false); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if x[0][i] != orig[i] {
			t.Fatal("NewPrep modified the caller's matrix")
		}
	}
}

func TestNonparaRankTransform(t *testing.T) {
	// With nonpara, Welch t on ranks must equal Welch t on pre-ranked data.
	x := [][]float64{{30, 10, 20, 60, 50, 40}}
	d, _ := stat.NewDesign(stat.Welch, tinyLabels)
	p1, _ := NewPrep(x, d, Abs, true)
	ranked := [][]float64{{3, 1, 2, 6, 5, 4}}
	p2, _ := NewPrep(ranked, d, Abs, false)
	if p1.Stat[0] != p2.Stat[0] {
		t.Errorf("nonpara stat %v != pre-ranked stat %v", p1.Stat[0], p2.Stat[0])
	}
}

func TestMergePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge with mismatched sizes did not panic")
		}
	}()
	NewCounts(3).Merge(NewCounts(4))
}

func TestQuickAdjGeqRaw(t *testing.T) {
	// Property: step-down maxT adjusted p-values dominate raw p-values,
	// for arbitrary data.
	f := func(seed uint8) bool {
		src := uint64(seed) + 1
		x := make([][]float64, 5)
		for i := range x {
			x[i] = make([]float64, 6)
			for j := range x[i] {
				src = src*6364136223846793005 + 1442695040888963407
				x[i][j] = float64(src%1000)/100 - 5
			}
		}
		d, _ := stat.NewDesign(stat.Welch, tinyLabels)
		p, err := NewPrep(x, d, Abs, false)
		if err != nil {
			return false
		}
		res := Run(p, perm.NewRandom(d, src, 50))
		for i := range x {
			if math.IsNaN(res.AdjP[i]) {
				continue
			}
			if res.AdjP[i] < res.RawP[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWilcoxonCompleteExactness(t *testing.T) {
	// For Wilcoxon on a complete enumeration, the raw p-value of the most
	// extreme possible data split must be 2/20 for side abs (the observed
	// split and its mirror are the two most extreme of C(6,3)=20).
	x := [][]float64{{1, 2, 3, 10, 11, 12}}
	p := mustPrep(t, x, stat.Wilcoxon, tinyLabels, Abs)
	gen, err := perm.NewComplete(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, gen)
	if math.Abs(res.RawP[0]-2.0/20) > 1e-12 {
		t.Errorf("wilcoxon exact rawp = %v, want 0.1", res.RawP[0])
	}
}

func BenchmarkProcess100x76x100(b *testing.B) {
	// 100 genes, 76 samples, 100 permutations per iteration: a scaled
	// slice of the paper's kernel workload.
	labels := make([]int, 76)
	for i := 38; i < 76; i++ {
		labels[i] = 1
	}
	d, _ := stat.NewDesign(stat.Welch, labels)
	x := make([][]float64, 100)
	s := uint64(7)
	for i := range x {
		x[i] = make([]float64, 76)
		for j := range x[i] {
			s = s*2862933555777941757 + 3037000493
			x[i][j] = float64(s%997) / 100
		}
	}
	p, _ := NewPrep(x, d, Abs, false)
	gen := perm.NewRandom(d, 1, 1<<40)
	scratch := p.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCounts(len(x))
		Process(p, gen, int64(i)*100, int64(i)*100+100, c, scratch)
	}
}
