package maxt

import (
	"math"
	"testing"

	"sprint/internal/matrix"
	"sprint/internal/perm"
	"sprint/internal/stat"
)

// Differential guard for the flat-matrix kernel refactor: every test ×
// every side × nonpara y/n, on NA-bearing matrices, against the retained
// legacy per-row path (NewPrepReference).
//
// Exactness caveat.  The legacy statistic functions are not self-
// consistent on mathematically tied labellings: Welford accumulation and
// fixed-order class reductions make the computed statistic depend on
// which orbit member (a class relabelling for F, a rank-multiset
// repetition on nonpara data) is being evaluated, so the legacy path
// itself breaks exact ties by ulp noise.  The batched kernels resolve
// those ties exactly (the tie discipline in internal/stat/kernel.go).
// The honest differential contract is therefore two-tiered:
//
//   - where the legacy path IS tie-consistent (the two-sample t tests and
//     the paired t on continuous data; Wilcoxon always, because rank sums
//     are exact in both paths), raw and adjusted p-values must match the
//     reference EXACTLY;
//   - everywhere else, the new path's exceedance counts must lie within
//     the interval the reference path could produce if each of its
//     statistics wiggled by ±ε (ε at relative rounding scale): counts
//     below obs−ε and above obs+ε are unambiguous and must agree, only
//     genuine fp-ties may differ.  On tie-free rows the interval
//     collapses and the bound degenerates to exact equality.

// diffMatrix builds a deterministic rows×cols matrix with a sprinkle of
// missing cells and one fully missing row.
func diffMatrix(rows, cols int, seed uint64) matrix.Matrix {
	m := matrix.New(rows, cols)
	s := seed
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			s = s*6364136223846793005 + 1442695040888963407
			row[j] = float64(s%100000)/7000 - 7
		}
	}
	// NA-bearing: a missing cell in every third row, a second one in every
	// fourth, and one row entirely missing (its p-values must be NaN on
	// both paths).
	for i := 0; i < rows; i++ {
		if i%3 == 0 {
			m.Row(i)[(i*5+1)%cols] = math.NaN()
		}
		if i%4 == 0 {
			m.Row(i)[(i*7+3)%cols] = math.NaN()
		}
	}
	if rows > 2 {
		for j := range m.Row(2) {
			m.Row(2)[j] = math.NaN()
		}
	}
	return m
}

func TestKernelMatchesReferencePathDifferential(t *testing.T) {
	cases := []struct {
		name   string
		test   stat.Test
		labels []int
		// exact: the legacy path is tie-consistent for this test on
		// continuous data, so non-nonpara runs must match it exactly.
		exact bool
	}{
		{"t-balanced", stat.Welch, []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}, true},
		{"t-unbalanced", stat.Welch, []int{0, 0, 0, 0, 1, 1, 1, 1, 1, 1}, true},
		{"t.equalvar", stat.TEqualVar, []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}, true},
		{"wilcoxon", stat.Wilcoxon, []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}, true},
		{"f", stat.F, []int{0, 0, 0, 1, 1, 1, 2, 2, 2}, false},
		{"pairt", stat.PairT, []int{0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1}, true},
		{"blockf", stat.BlockF, []int{0, 1, 2, 1, 2, 0, 2, 0, 1}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d, err := stat.NewDesign(tc.test, tc.labels)
			if err != nil {
				t.Fatal(err)
			}
			m := diffMatrix(12, d.N, 0x9e3779b97f4a7c15^uint64(len(tc.name)))
			gen, err := perm.NewComplete(d)
			if err != nil {
				t.Fatal(err)
			}
			for _, side := range []Side{Abs, Upper, Lower} {
				for _, nonpara := range []bool{false, true} {
					pNew, err := NewPrepMatrix(m, d, side, nonpara)
					if err != nil {
						t.Fatal(err)
					}
					pRef, err := NewPrepReference(m, d, side, nonpara)
					if err != nil {
						t.Fatal(err)
					}
					resNew := Run(pNew, gen)
					resRef := Run(pRef, gen)
					label := tc.name + "/" + side.String()
					if nonpara {
						label += "/nonpara"
					}
					compareStats(t, label, resNew, resRef)
					// Wilcoxon sums are exact in both paths even on
					// ranks; the other exact cases lose tie consistency
					// under the nonpara rank transform.
					if tc.exact && (!nonpara || tc.test == stat.Wilcoxon) {
						comparePValuesExact(t, label, resNew, resRef)
					} else {
						comparePValuesCollar(t, label, pNew, pRef, gen, resNew)
					}
				}
			}
		})
	}
}

// compareStats asserts the observed statistics agree to rounding and have
// identical NaN patterns.
func compareStats(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.B != want.B {
		t.Fatalf("%s: B = %d, want %d", label, got.B, want.B)
	}
	for i := range want.Stat {
		gN, wN := math.IsNaN(got.Stat[i]), math.IsNaN(want.Stat[i])
		if gN != wN {
			t.Errorf("%s row %d: stat NaN-ness %v vs reference %v", label, i, got.Stat[i], want.Stat[i])
			continue
		}
		if gN {
			continue
		}
		diff := math.Abs(got.Stat[i] - want.Stat[i])
		scale := math.Max(math.Abs(want.Stat[i]), 1)
		if diff > 1e-9*scale {
			t.Errorf("%s row %d: stat %v, reference %v", label, i, got.Stat[i], want.Stat[i])
		}
	}
}

// comparePValuesExact demands bitwise-equal p-values (they are count
// ratios over the same denominator) and the identical significance order.
func comparePValuesExact(t *testing.T, label string, got, want *Result) {
	t.Helper()
	for i := range want.RawP {
		if !floatsIdentical(got.RawP[i], want.RawP[i]) {
			t.Errorf("%s row %d: rawp %v != reference %v", label, i, got.RawP[i], want.RawP[i])
		}
		if !floatsIdentical(got.AdjP[i], want.AdjP[i]) {
			t.Errorf("%s row %d: adjp %v != reference %v", label, i, got.AdjP[i], want.AdjP[i])
		}
		if got.Order[i] != want.Order[i] {
			t.Errorf("%s: order[%d] = %d, reference %d", label, i, got.Order[i], want.Order[i])
		}
	}
}

// floatsIdentical treats NaN == NaN and demands bitwise-equal values
// otherwise.
func floatsIdentical(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// comparePValuesCollar replays every permutation through the legacy
// statistic functions and brackets each exceedance count between the
// counts at thresholds obs+ε and obs−ε.  The new path's counts must fall
// inside the bracket: only labellings the reference itself cannot place
// unambiguously (|z−obs| ≤ ε) are allowed to differ.
func comparePValuesCollar(t *testing.T, label string, pNew, pRef *Prep, gen perm.Generator, resNew *Result) {
	t.Helper()
	n := pRef.Rows()
	B := gen.Total()
	lab := make([]int, pRef.Design.N)
	z := make([]float64, n)
	obs := pNew.Obs
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 4e-9 * math.Max(math.Abs(obs[i]), 1)
	}
	order, valid := pNew.Order, pNew.Valid
	lowRaw := make([]int64, n)
	highRaw := make([]int64, n)
	lowAdj := make([]int64, n)
	highAdj := make([]int64, n)
	for b := int64(0); b < B; b++ {
		gen.Label(b, lab)
		for i := 0; i < n; i++ {
			v := pRef.StatFn(pRef.M.Row(i), lab)
			if math.IsNaN(v) {
				z[i] = math.Inf(-1)
			} else {
				z[i] = pRef.Side.transform(v)
			}
		}
		for i := 0; i < n; i++ {
			if math.IsNaN(obs[i]) {
				continue
			}
			if z[i] >= obs[i]+eps[i] {
				lowRaw[i]++
			}
			if z[i] >= obs[i]-eps[i] {
				highRaw[i]++
			}
		}
		u := math.Inf(-1)
		for j := valid - 1; j >= 0; j-- {
			r := order[j]
			if z[r] > u {
				u = z[r]
			}
			if u >= obs[r]+eps[r] {
				lowAdj[r]++
			}
			if u >= obs[r]-eps[r] {
				highAdj[r]++
			}
		}
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(obs[i]) {
			if !math.IsNaN(resNew.RawP[i]) || !math.IsNaN(resNew.AdjP[i]) {
				t.Errorf("%s row %d: NaN row got p-values (%v, %v)", label, i, resNew.RawP[i], resNew.AdjP[i])
			}
			continue
		}
		raw := int64(math.Round(resNew.RawP[i] * float64(B)))
		if raw < lowRaw[i] || raw > highRaw[i] {
			t.Errorf("%s row %d: raw count %d outside reference bracket [%d, %d]",
				label, i, raw, lowRaw[i], highRaw[i])
		}
	}
	// Adjusted p-values pass through the step-down monotone enforcement,
	// which is monotone in the count vector: bracket after enforcing.
	monoLo := monotoneAlong(order, valid, lowAdj, B)
	monoHi := monotoneAlong(order, valid, highAdj, B)
	for j := 0; j < valid; j++ {
		r := order[j]
		if resNew.AdjP[r] < monoLo[r]-1e-15 || resNew.AdjP[r] > monoHi[r]+1e-15 {
			t.Errorf("%s row %d: adjp %v outside reference bracket [%v, %v]",
				label, r, resNew.AdjP[r], monoLo[r], monoHi[r])
		}
	}
}

// monotoneAlong applies the step-down monotone enforcement to counts along
// the significance order, returning p-values.
func monotoneAlong(order []int, valid int, counts []int64, B int64) []float64 {
	out := make([]float64, len(counts))
	prev := 0.0
	for j := 0; j < valid; j++ {
		r := order[j]
		v := float64(counts[r]) / float64(B)
		if v < prev {
			v = prev
		}
		out[r] = v
		prev = v
	}
	return out
}

// TestKernelMatchesReferenceRandomGenerator repeats the differential check
// under the Monte-Carlo generator, whose labellings are what production
// B=10000 runs actually evaluate.
func TestKernelMatchesReferenceRandomGenerator(t *testing.T) {
	labels := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	for _, test := range []stat.Test{stat.Welch, stat.TEqualVar, stat.Wilcoxon} {
		d, err := stat.NewDesign(test, labels)
		if err != nil {
			t.Fatal(err)
		}
		m := diffMatrix(15, d.N, 0xdeadbeef)
		gen := perm.NewRandom(d, 99, 400)
		for _, side := range []Side{Abs, Upper, Lower} {
			pNew, err := NewPrepMatrix(m, d, side, false)
			if err != nil {
				t.Fatal(err)
			}
			pRef, err := NewPrepReference(m, d, side, false)
			if err != nil {
				t.Fatal(err)
			}
			resNew, resRef := Run(pNew, gen), Run(pRef, gen)
			label := test.String() + "/" + side.String() + "/random"
			compareStats(t, label, resNew, resRef)
			comparePValuesExact(t, label, resNew, resRef)
		}
	}
}
